package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"dejaview/internal/core"
	"dejaview/internal/e2e"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
)

// BrowseRow is one scenario's visual-history seek measurement: archive
// an e2e workload, then time a full time-machine pass (thumbnail strip,
// every thumbnail resolved, every distinct checkpoint revived) cold —
// first touch of the on-disk blocks — and again warm, when the shared
// block cache and keyframe cache hold everything the pass needs.
type BrowseRow struct {
	Scenario string
	// Thumbs is the strip length; Resolves counts resolved views per
	// pass (equal to Thumbs); Revives counts distinct checkpoints
	// revived per pass.
	Thumbs  int
	Revives int
	// ColdSeconds / WarmSeconds time the identical pass over a cold vs
	// warmed archive.
	ColdSeconds float64
	WarmSeconds float64
	// Misses / Hits are the shared block cache's counters after the warm
	// pass; the hit rate is the headline number for demand paging.
	Misses uint64
	Hits   uint64
}

// HitRate is the fraction of block lookups served without decoding.
func (r BrowseRow) HitRate() float64 {
	if total := r.Hits + r.Misses; total > 0 {
		return float64(r.Hits) / float64(total)
	}
	return 0
}

// Speedup is the cold/warm latency ratio of the full seek pass.
func (r BrowseRow) Speedup() float64 {
	if r.WarmSeconds == 0 {
		return 0
	}
	return r.ColdSeconds / r.WarmSeconds
}

// Browse is the `dvbench -browse` report.
type Browse struct {
	Rows []BrowseRow
}

// RunBrowse measures visual-history seek latency per e2e scenario.
// Sessions record with frequent keyframes so the strip has real length
// and the screenshot stream spans many blocks.
func RunBrowse(scenarios ...string) (*Browse, error) {
	out := &Browse{}
	for _, sc := range e2e.Scenarios() {
		if len(scenarios) > 0 && !containsName(scenarios, sc.Name) {
			continue
		}
		row, err := runBrowseOnce(sc)
		if err != nil {
			return nil, fmt.Errorf("browse %s: %w", sc.Name, err)
		}
		out.Rows = append(out.Rows, row)
	}
	if len(out.Rows) == 0 {
		return nil, fmt.Errorf("browse: no scenario matches %v", scenarios)
	}
	return out, nil
}

// seekPass is one full time-machine pass over the archive.
func seekPass(a *core.Archive, row *BrowseRow) error {
	thumbs, err := a.BrowseTimeline(16, 16, 1)
	if err != nil {
		return err
	}
	row.Thumbs = len(thumbs)
	revived := map[uint64]bool{}
	for _, th := range thumbs {
		v, err := a.ResolveThumb(th.Index)
		if err != nil {
			return err
		}
		if v.HasCheckpoint && !revived[v.Checkpoint] {
			revived[v.Checkpoint] = true
			if _, err := a.ReviveCheckpoint(v.Checkpoint); err != nil {
				return err
			}
		}
	}
	row.Revives = len(revived)
	return nil
}

func runBrowseOnce(sc *e2e.Scenario) (BrowseRow, error) {
	row := BrowseRow{Scenario: sc.Name}
	s, err := e2e.Build(sc, core.Config{Record: record.Options{
		ScreenshotInterval:  2 * simclock.Second,
		ScreenshotMinChange: 0.00001,
	}})
	if err != nil {
		return row, err
	}
	tmp, err := os.MkdirTemp("", "dvbrowse")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(tmp)
	dir := filepath.Join(tmp, "archive")
	if err := s.SaveArchive(dir); err != nil {
		return row, err
	}

	a, err := core.OpenArchive(dir)
	if err != nil {
		return row, err
	}
	defer a.Close()
	row.ColdSeconds, err = hostSeconds(func() error { return seekPass(a, &row) })
	if err != nil {
		return row, err
	}
	row.WarmSeconds, err = hostSeconds(func() error { return seekPass(a, &row) })
	if err != nil {
		return row, err
	}
	st := a.BlockCacheStats()
	row.Misses, row.Hits = st.Misses, st.Hits
	return row, nil
}

// Render prints the browse-latency table.
func (b *Browse) Render() string {
	t := &table{header: []string{"Scenario", "Thumbs", "Revives",
		"Cold ms", "Warm ms", "Speedup", "Misses", "Hits", "Hit rate"}}
	for _, r := range b.Rows {
		t.add(r.Scenario,
			fmt.Sprintf("%d", r.Thumbs),
			fmt.Sprintf("%d", r.Revives),
			fmt.Sprintf("%.1f", r.ColdSeconds*1e3),
			fmt.Sprintf("%.1f", r.WarmSeconds*1e3),
			fmt.Sprintf("%.1fx", r.Speedup()),
			fmt.Sprintf("%d", r.Misses),
			fmt.Sprintf("%d", r.Hits),
			fmt.Sprintf("%.0f%%", r.HitRate()*100))
	}
	return "Browse: visual-history seek latency (cold vs warm block cache)\n" + t.String()
}

// Report flattens the browse experiment. Strip shape and cache counts
// are deterministic; times are gated only for gross regressions.
func (b *Browse) Report() *Report {
	r := &Report{Name: "browse"}
	for _, row := range b.Rows {
		p := "browse/" + row.Scenario + "/"
		r.Metrics = append(r.Metrics,
			Metric{Name: p + "thumbs", Value: float64(row.Thumbs), Unit: "count"},
			Metric{Name: p + "revives", Value: float64(row.Revives), Unit: "count"},
			Metric{Name: p + "cold_ms", Value: row.ColdSeconds * 1e3, Unit: "ms", Better: BetterLower},
			Metric{Name: p + "warm_ms", Value: row.WarmSeconds * 1e3, Unit: "ms", Better: BetterLower},
			Metric{Name: p + "speedup", Value: row.Speedup(), Unit: "x", Better: BetterHigher},
			Metric{Name: p + "cache_misses", Value: float64(row.Misses), Unit: "count", Better: BetterLower},
			Metric{Name: p + "cache_hit_rate", Value: row.HitRate(), Unit: "ratio", Better: BetterHigher},
		)
	}
	return r
}
