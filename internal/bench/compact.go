package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"dejaview/internal/core"
	"dejaview/internal/e2e"
	"dejaview/internal/obs"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
	"dejaview/internal/tier"
)

// CompactRow is one scenario's tiered-lifecycle measurement: archive an
// e2e workload, time the lazy-vs-eager open split on the full archive,
// then time a thinning+recompressing compaction and report what it
// reclaimed.
type CompactRow struct {
	Scenario    string
	Checkpoints int
	// EagerOpenSeconds / LazyOpenSeconds time core.OpenArchiveEager vs
	// the default lazy core.OpenArchive on the same (uncompacted)
	// archive; EagerBlocks / LazyBlocks are the compressed blocks each
	// open decoded (compress.blocks_unpacked delta).
	EagerOpenSeconds float64
	LazyOpenSeconds  float64
	EagerBlocks      uint64
	LazyBlocks       uint64
	// Dropped is the number of checkpoints the compaction thinned away.
	Dropped int
	// CompactSeconds is the wall clock of the whole crash-safe
	// compaction (plan, rewrite, verify, commit).
	CompactSeconds float64
	// BytesBefore / BytesAfter are the archive's on-disk sizes around
	// the compaction.
	BytesBefore int64
	BytesAfter  int64
}

// ReclaimedBytes is the on-disk space the compaction freed.
func (r CompactRow) ReclaimedBytes() int64 {
	if d := r.BytesBefore - r.BytesAfter; d > 0 {
		return d
	}
	return 0
}

// CompactMBPerSec is compaction throughput over the input archive size.
func (r CompactRow) CompactMBPerSec() float64 {
	if r.CompactSeconds == 0 {
		return 0
	}
	return float64(r.BytesBefore) / 1e6 / r.CompactSeconds
}

// Compact is the `dvbench -compact` report.
type Compact struct {
	Rows []CompactRow
}

// RunCompact measures the tiered archive lifecycle per e2e scenario.
// Sessions record with frequent keyframes so the screenshot stream
// spans many blocks and the lazy-vs-eager split is visible; the
// compaction policy thins the older half of each chain at 1-in-2 and
// recompresses with the strongest codec.
func RunCompact(scenarios ...string) (*Compact, error) {
	out := &Compact{}
	for _, sc := range e2e.Scenarios() {
		if len(scenarios) > 0 && !containsName(scenarios, sc.Name) {
			continue
		}
		row, err := runCompactOnce(sc)
		if err != nil {
			return nil, fmt.Errorf("compact %s: %w", sc.Name, err)
		}
		out.Rows = append(out.Rows, row)
	}
	if len(out.Rows) == 0 {
		return nil, fmt.Errorf("compact: no scenario matches %v", scenarios)
	}
	return out, nil
}

func runCompactOnce(sc *e2e.Scenario) (CompactRow, error) {
	row := CompactRow{Scenario: sc.Name}
	s, err := e2e.Build(sc, core.Config{Record: record.Options{
		ScreenshotInterval:  2 * simclock.Second,
		ScreenshotMinChange: 0.00001,
	}})
	if err != nil {
		return row, err
	}
	tmp, err := os.MkdirTemp("", "dvcompact")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(tmp)
	dir := filepath.Join(tmp, "archive")
	if err := s.SaveArchive(dir); err != nil {
		return row, err
	}

	base := obs.Default.Snapshot()
	sec, err := hostSeconds(func() error {
		_, err := core.OpenArchiveEager(dir)
		return err
	})
	if err != nil {
		return row, err
	}
	row.EagerOpenSeconds = sec
	row.EagerBlocks = obs.Default.Snapshot().Delta(base).Counters["compress.blocks_unpacked"]

	var a *core.Archive
	base = obs.Default.Snapshot()
	sec, err = hostSeconds(func() error {
		var err error
		a, err = core.OpenArchive(dir)
		return err
	})
	if err != nil {
		return row, err
	}
	row.LazyOpenSeconds = sec
	row.LazyBlocks = obs.Default.Snapshot().Delta(base).Counters["compress.blocks_unpacked"]

	infos := a.Checkpointer().ImageInfos()
	row.Checkpoints = len(infos)
	if len(infos) < 2 {
		a.Close()
		return row, fmt.Errorf("scenario produced %d checkpoints", len(infos))
	}
	mid := a.End - infos[len(infos)/2].Time
	a.Close()

	var res tier.Result
	sec, err = hostSeconds(func() error {
		var err error
		res, err = tier.Compact(dir, tier.Policy{
			Tiers:      []tier.Tier{{MinAge: mid, KeepEvery: 2}},
			Recompress: true,
		})
		return err
	})
	if err != nil {
		return row, err
	}
	row.CompactSeconds = sec
	row.Dropped = res.Dropped
	row.BytesBefore = res.BytesBefore
	row.BytesAfter = res.BytesAfter
	return row, nil
}

// Render prints the lifecycle table.
func (c *Compact) Render() string {
	t := &table{header: []string{"Scenario", "Ckpts", "Eager ms", "Lazy ms",
		"Eager blk", "Lazy blk", "Compact ms", "MB/s", "Dropped", "Before KB", "After KB"}}
	for _, r := range c.Rows {
		t.add(r.Scenario,
			fmt.Sprintf("%d", r.Checkpoints),
			fmt.Sprintf("%.1f", r.EagerOpenSeconds*1e3),
			fmt.Sprintf("%.1f", r.LazyOpenSeconds*1e3),
			fmt.Sprintf("%d", r.EagerBlocks),
			fmt.Sprintf("%d", r.LazyBlocks),
			fmt.Sprintf("%.1f", r.CompactSeconds*1e3),
			fmt.Sprintf("%.1f", r.CompactMBPerSec()),
			fmt.Sprintf("%d", r.Dropped),
			fmt.Sprintf("%.1f", float64(r.BytesBefore)/1e3),
			fmt.Sprintf("%.1f", float64(r.BytesAfter)/1e3))
	}
	return "Compact: tiered archive lifecycle (lazy vs eager open, thinning compaction)\n" + t.String()
}

// Report flattens the compact experiment. Block counts are
// deterministic; times are gated only for gross regressions.
func (c *Compact) Report() *Report {
	r := &Report{Name: "compact"}
	for _, row := range c.Rows {
		p := "compact/" + row.Scenario + "/"
		r.Metrics = append(r.Metrics,
			Metric{Name: p + "checkpoints", Value: float64(row.Checkpoints), Unit: "count"},
			Metric{Name: p + "eager_open_ms", Value: row.EagerOpenSeconds * 1e3, Unit: "ms", Better: BetterLower},
			Metric{Name: p + "lazy_open_ms", Value: row.LazyOpenSeconds * 1e3, Unit: "ms", Better: BetterLower},
			Metric{Name: p + "eager_blocks", Value: float64(row.EagerBlocks), Unit: "count"},
			Metric{Name: p + "lazy_blocks", Value: float64(row.LazyBlocks), Unit: "count", Better: BetterLower},
			Metric{Name: p + "compact_ms", Value: row.CompactSeconds * 1e3, Unit: "ms", Better: BetterLower},
			Metric{Name: p + "compact_mb_per_sec", Value: row.CompactMBPerSec(), Unit: "MB/s", Better: BetterHigher},
			Metric{Name: p + "dropped", Value: float64(row.Dropped), Unit: "count"},
			Metric{Name: p + "bytes_before", Value: float64(row.BytesBefore), Unit: "bytes"},
			Metric{Name: p + "bytes_after", Value: float64(row.BytesAfter), Unit: "bytes", Better: BetterLower},
			Metric{Name: p + "reclaimed_bytes", Value: float64(row.ReclaimedBytes()), Unit: "bytes", Better: BetterHigher},
		)
	}
	return r
}
