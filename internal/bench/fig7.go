package bench

import (
	"fmt"

	"dejaview/internal/core"
	"dejaview/internal/simclock"
)

// Fig7Point is the revive latency from one checkpoint.
type Fig7Point struct {
	Counter    uint64
	UncachedMS float64
	CachedMS   float64
	ImagesRead int
	BytesRead  int64
}

// Fig7Row is one scenario's five evenly spaced revive points.
type Fig7Row struct {
	Scenario string
	Points   []Fig7Point
}

// Fig7 is the revive latency experiment: the user's session is revived
// from five checkpoints evenly spaced through each scenario's execution,
// once with cold caches and once warm.
//
// Expected shape (paper): uncached revives are seconds-scale, dominated
// by I/O, and grow over session time as application memory grows (web
// most dramatically); cached revives are roughly flat and sub-second.
type Fig7 struct {
	Rows []Fig7Row
}

// RunFig7 executes the experiment.
func RunFig7(scenarios ...string) (*Fig7, error) {
	out := &Fig7{}
	for _, sc := range filterScenarios(allScenarios(), scenarios) {
		s, _, err := runScenario(sc, benchConfig(), 6000)
		if err != nil {
			return nil, fmt.Errorf("fig7 %s: %w", sc.Name, err)
		}
		n := s.Checkpointer().Counter()
		if n == 0 {
			continue
		}
		row := Fig7Row{Scenario: sc.Name}
		for i := 1; i <= 5; i++ {
			counter := uint64(i) * n / 5
			if counter == 0 {
				counter = 1
			}
			p, err := revivePoint(s, counter)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s point %d: %w", sc.Name, i, err)
			}
			row.Points = append(row.Points, p)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func revivePoint(s *core.Session, counter uint64) (Fig7Point, error) {
	pt := Fig7Point{Counter: counter}
	// Cold: drop every image from the page cache first.
	s.Checkpointer().DropCaches()
	cold, err := s.ReviveCheckpoint(counter)
	if err != nil {
		return pt, err
	}
	pt.UncachedMS = float64(cold.Restore.Latency) / float64(simclock.Millisecond)
	pt.ImagesRead = cold.Restore.ImagesRead
	pt.BytesRead = cold.Restore.BytesRead
	s.CloseRevived(cold)
	// Warm: the cold revive populated the cache.
	warm, err := s.ReviveCheckpoint(counter)
	if err != nil {
		return pt, err
	}
	pt.CachedMS = float64(warm.Restore.Latency) / float64(simclock.Millisecond)
	s.CloseRevived(warm)
	return pt, nil
}

// Render prints the five points per scenario.
func (f *Fig7) Render() string {
	t := &table{header: []string{"Scenario", "Point", "Ckpt#", "Uncached (ms)",
		"Cached (ms)", "Images", "MB read"}}
	for _, r := range f.Rows {
		for i, p := range r.Points {
			name := ""
			if i == 0 {
				name = r.Scenario
			}
			t.add(name, fmt.Sprint(i+1), fmt.Sprint(p.Counter),
				fmt.Sprintf("%.1f", p.UncachedMS),
				fmt.Sprintf("%.1f", p.CachedMS),
				fmt.Sprint(p.ImagesRead),
				fmt.Sprintf("%.1f", float64(p.BytesRead)/(1<<20)))
		}
	}
	return "Figure 7: revive latency from five evenly spaced checkpoints (virtual ms)\n" + t.String()
}
