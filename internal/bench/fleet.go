package bench

import (
	"fmt"
	"net"
	"sync"
	"time"

	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/e2e"
	"dejaview/internal/obs"
	"dejaview/internal/remote"
)

// fleetFrames is the number of display commands fanned out per session.
const fleetFrames = 60

// FleetConfig is one fleet shape: how many sessions share the daemon and
// how many live viewers attach to each.
type FleetConfig struct {
	Sessions, Viewers int
}

// FleetRow is one fleet shape's measurement: the daemon serves Sessions
// scripted desktops at once, each with Viewers attached live replicas
// and an admission quota of exactly Viewers clients, and every session's
// display fans a burst out concurrently with all the others.
type FleetRow struct {
	Sessions, Viewers int
	// Frames is the number of display commands submitted per session.
	Frames int
	// FanoutSeconds is the host wall clock from the first submit until
	// every replica of every session converged on its session's screen.
	FanoutSeconds float64
	// FramesSent / BytesSent are the daemon's aggregate delivery counters
	// for the fan-out window, across all sessions and viewers.
	FramesSent uint64
	BytesSent  uint64
	// AdmissionRejects counts clients shed during the run. The bench
	// dials exactly the per-session quota, so anything nonzero means
	// admission control misfired under load.
	AdmissionRejects uint64
	// SessionMinFPS / SessionMaxFPS bound the per-session delivery rates
	// (from each shard's remote.session.<id>.frames_sent counter): the
	// spread is the daemon's fairness across tenants.
	SessionMinFPS float64
	SessionMaxFPS float64
	// SubmitP99Ms is the 99th-percentile display-submit latency across
	// every session's remote.session.<id>.submit_ms histogram — the cost
	// the fan-out path adds to the recorded desktop's hot path.
	SubmitP99Ms float64
}

// FramesPerSec is the aggregate delivery rate across the whole fleet.
func (r FleetRow) FramesPerSec() float64 {
	if r.FanoutSeconds == 0 {
		return 0
	}
	return float64(r.FramesSent) / r.FanoutSeconds
}

// MBPerSec is the aggregate payload rate across the whole fleet.
func (r FleetRow) MBPerSec() float64 {
	if r.FanoutSeconds == 0 {
		return 0
	}
	return float64(r.BytesSent) / (1 << 20) / r.FanoutSeconds
}

// Fleet is the `dvbench -fleet` report.
type Fleet struct {
	Rows []FleetRow
}

// RunFleet measures the multi-tenant daemon over real loopback TCP: for
// each fleet shape it serves that many scripted desktop sessions behind
// one daemon, attaches the full viewer quota to every session, fans a
// concurrent burst of display traffic out on all sessions at once, and
// reads per-session throughput and submit latency back from the shard
// instruments. The default ladder ends at the paper-scale 8 sessions × 4
// viewers.
func RunFleet(configs ...FleetConfig) (*Fleet, error) {
	if len(configs) == 0 {
		configs = []FleetConfig{{2, 2}, {4, 2}, {8, 4}}
	}
	sc, err := e2e.ScenarioByName("desktop")
	if err != nil {
		return nil, err
	}
	out := &Fleet{}
	for _, cfg := range configs {
		if cfg.Sessions <= 0 || cfg.Viewers <= 0 {
			return nil, fmt.Errorf("fleet: invalid shape %dx%d", cfg.Sessions, cfg.Viewers)
		}
		row, err := runFleetOnce(sc, cfg)
		if err != nil {
			return nil, fmt.Errorf("fleet %dx%d: %w", cfg.Sessions, cfg.Viewers, err)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func fleetSessionID(i int) string { return fmt.Sprintf("bench%d", i) }

func runFleetOnce(sc *e2e.Scenario, cfg FleetConfig) (FleetRow, error) {
	row := FleetRow{Sessions: cfg.Sessions, Viewers: cfg.Viewers, Frames: fleetFrames}
	sessions := make([]*core.Session, cfg.Sessions)
	opts := remote.Options{MaxClientsPerSession: cfg.Viewers}
	for i := range sessions {
		s, err := e2e.Build(sc, core.Config{})
		if err != nil {
			return row, err
		}
		sessions[i] = s
		opts.Sessions = append(opts.Sessions, remote.SessionConfig{ID: fleetSessionID(i), Session: s})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return row, err
	}
	srv := remote.Serve(ln, opts)
	defer srv.Close()

	views := make([][]*remote.LiveView, cfg.Sessions)
	for i := range sessions {
		for j := 0; j < cfg.Viewers; j++ {
			c, err := remote.DialSession(srv.Addr().String(), fleetSessionID(i))
			if err != nil {
				return row, err
			}
			defer c.Close()
			lv, err := c.AttachLive()
			if err != nil {
				return row, err
			}
			if err := lv.WaitScreen(30 * time.Second); err != nil {
				return row, err
			}
			views[i] = append(views[i], lv)
		}
	}

	// Fan-out: every session submits its burst concurrently — the fleet
	// is the contention, not just the viewer count. 64 KiB pattern fills
	// keep the measurement dominated by delivery.
	base := srv.Stats()
	obsBase := obs.Default.Snapshot()
	t0 := time.Now()
	errc := make(chan error, cfg.Sessions)
	var wg sync.WaitGroup
	for i, s := range sessions {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, h := s.Display().Size()
			pattern := make([]display.Pixel, 128*128)
			for k := 0; k < fleetFrames; k++ {
				for j := range pattern {
					pattern[j] = display.Pixel(i*fleetFrames*len(pattern) + k*len(pattern) + j)
				}
				if err := s.Display().Submit(display.PatternFill(s.Clock().Now(),
					display.NewRect((k*89)%(w-128), (k*53)%(h-128), 128, 128), pattern, 128, 128)); err != nil {
					errc <- err
					return
				}
				if _, err := s.Display().Flush(); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		return row, err
	default:
	}
	for i, s := range sessions {
		want := s.Display().Screen().Hash()
		for j, lv := range views[i] {
			deadline := time.Now().Add(60 * time.Second)
			for lv.Screen().Hash() != want {
				if time.Now().After(deadline) {
					return row, fmt.Errorf("session %d viewer %d never converged", i, j)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	row.FanoutSeconds = time.Since(t0).Seconds()

	st := srv.Stats()
	row.FramesSent = st.FramesSent - base.FramesSent
	row.BytesSent = st.BytesSent - base.BytesSent
	row.AdmissionRejects = st.AdmissionRejects - base.AdmissionRejects

	// Per-session throughput and submit latency from the shard
	// instruments, as deltas over the fan-out window.
	delta := obs.Default.Snapshot().Delta(obsBase)
	var submit obs.HistogramSnapshot
	for i := range sessions {
		prefix := "remote.session." + fleetSessionID(i) + "."
		fps := float64(delta.Counters[prefix+"frames_sent"]) / row.FanoutSeconds
		if i == 0 || fps < row.SessionMinFPS {
			row.SessionMinFPS = fps
		}
		if fps > row.SessionMaxFPS {
			row.SessionMaxFPS = fps
		}
		h := delta.Histograms[prefix+"submit_ms"]
		if submit.Counts == nil {
			submit = h
		} else {
			for b := range h.Counts {
				submit.Counts[b] += h.Counts[b]
				submit.Count += h.Counts[b]
			}
			submit.Sum += h.Sum
		}
	}
	row.SubmitP99Ms = submit.Quantile(0.99)
	return row, nil
}

// Render prints the fleet table.
func (f *Fleet) Render() string {
	t := &table{header: []string{"Sessions", "Viewers", "Fan-out ms", "Frames/s", "MB/s",
		"Session fps min..max", "Submit p99 ms", "Rejects"}}
	for _, row := range f.Rows {
		t.add(fmt.Sprintf("%d", row.Sessions),
			fmt.Sprintf("%d", row.Viewers),
			fmt.Sprintf("%.1f", row.FanoutSeconds*1e3),
			fmt.Sprintf("%.0f", row.FramesPerSec()),
			fmt.Sprintf("%.1f", row.MBPerSec()),
			fmt.Sprintf("%.0f..%.0f", row.SessionMinFPS, row.SessionMaxFPS),
			fmt.Sprintf("%.2f", row.SubmitP99Ms),
			fmt.Sprintf("%d", row.AdmissionRejects))
	}
	return "Fleet: multi-tenant fan-out throughput and per-session fairness over loopback TCP\n" + t.String()
}
