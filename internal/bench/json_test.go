package bench

import (
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// Tests for the machine-readable report schema and the regression
// comparator behind `dvbench -json` / `dvbench -compare`.

func sampleReport() *Report {
	return &Report{
		Name: "storage",
		Metrics: []Metric{
			{Name: "storage/web/raw_bytes", Value: 1 << 20, Unit: "bytes"},
			{Name: "storage/web/saved_bytes", Value: 1 << 18, Unit: "bytes", Better: BetterLower},
			{Name: "storage/web/save_ms", Value: 12.5, Unit: "ms", Better: BetterLower},
			{Name: "storage/web/throughput", Value: 80, Unit: "MB/s", Better: BetterHigher},
		},
	}
}

// TestReportRoundTrip: WriteReport then LoadReport reproduces the report
// exactly, including direction markers.
func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	path := filepath.Join(t.TempDir(), "BENCH_storage.json")
	if err := WriteReport(path, r); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatalf("LoadReport: %v", err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round trip diverged:\n got:  %+v\n want: %+v", got, r)
	}
}

// TestValidateReportRejects covers each schema invariant the comparator
// and CI tooling rely on.
func TestValidateReportRejects(t *testing.T) {
	cases := []struct {
		label string
		mut   func(*Report)
	}{
		{"no report name", func(r *Report) { r.Name = "" }},
		{"unnamed metric", func(r *Report) { r.Metrics[0].Name = "" }},
		{"duplicate metric", func(r *Report) { r.Metrics[1].Name = r.Metrics[0].Name }},
		{"NaN value", func(r *Report) { r.Metrics[2].Value = math.NaN() }},
		{"infinite value", func(r *Report) { r.Metrics[2].Value = math.Inf(1) }},
		{"unknown direction", func(r *Report) { r.Metrics[3].Better = "sideways" }},
	}
	for _, tc := range cases {
		r := sampleReport()
		tc.mut(r)
		if err := ValidateReport(r); err == nil {
			t.Errorf("%s: accepted", tc.label)
		}
		// An invalid report must not reach disk either.
		if err := WriteReport(filepath.Join(t.TempDir(), "x.json"), r); err == nil {
			t.Errorf("%s: written to disk", tc.label)
		}
	}
	if err := ValidateReport(sampleReport()); err != nil {
		t.Errorf("valid report rejected: %v", err)
	}
}

// TestCompareFlagsRegressions is the acceptance-criteria comparator
// check: a 2x latency regression is flagged past a 20% threshold, a 15%
// drift is not, and direction/informational/missing/zero-baseline rules
// all hold.
func TestCompareFlagsRegressions(t *testing.T) {
	old := &Report{Name: "e2e", Metrics: []Metric{
		{Name: "e2e/web/total_ms", Value: 100, Unit: "ms", Better: BetterLower},
		{Name: "e2e/web/steps", Value: 4000, Unit: "count"}, // informational
		{Name: "e2e/web/fps", Value: 60, Unit: "fps", Better: BetterHigher},
		{Name: "e2e/web/zero_ms", Value: 0, Unit: "ms", Better: BetterLower},
		{Name: "e2e/web/gone_ms", Value: 5, Unit: "ms", Better: BetterLower},
	}}

	// Injected 2x regression on a lower-is-better metric: flagged.
	worse := &Report{Name: "e2e", Metrics: []Metric{
		{Name: "e2e/web/total_ms", Value: 200, Unit: "ms", Better: BetterLower},
	}}
	regs := Compare(old, worse, 0.20)
	if len(regs) != 1 {
		t.Fatalf("2x regression: got %d findings, want 1: %v", len(regs), regs)
	}
	if r := regs[0]; r.Metric != "e2e/web/total_ms" || r.ChangePct != 100 {
		t.Errorf("regression = %+v, want total_ms at +100%%", r)
	}
	if !strings.Contains(regs[0].String(), "e2e/web/total_ms") {
		t.Errorf("regression string unhelpful: %q", regs[0])
	}

	// 15% drift stays under a 20% threshold.
	drift := &Report{Name: "e2e", Metrics: []Metric{
		{Name: "e2e/web/total_ms", Value: 115, Unit: "ms", Better: BetterLower},
	}}
	if regs := Compare(old, drift, 0.20); len(regs) != 0 {
		t.Errorf("15%% drift flagged: %v", regs)
	}

	// Improvement in the good direction is never a regression.
	better := &Report{Name: "e2e", Metrics: []Metric{
		{Name: "e2e/web/total_ms", Value: 10, Unit: "ms", Better: BetterLower},
		{Name: "e2e/web/fps", Value: 240, Unit: "fps", Better: BetterHigher},
	}}
	if regs := Compare(old, better, 0.20); len(regs) != 0 {
		t.Errorf("improvements flagged: %v", regs)
	}

	// Higher-is-better: a 50% throughput drop is flagged, with a negative
	// change percentage.
	slower := &Report{Name: "e2e", Metrics: []Metric{
		{Name: "e2e/web/fps", Value: 30, Unit: "fps", Better: BetterHigher},
	}}
	regs = Compare(old, slower, 0.20)
	if len(regs) != 1 || regs[0].ChangePct != -50 {
		t.Fatalf("fps drop: got %v, want one -50%% finding", regs)
	}

	// Informational metrics, metrics missing from the old report, and
	// zero baselines are all skipped however far they move.
	noisy := &Report{Name: "e2e", Metrics: []Metric{
		{Name: "e2e/web/steps", Value: 9e9, Unit: "count"},
		{Name: "e2e/web/brand_new_ms", Value: 1e9, Unit: "ms", Better: BetterLower},
		{Name: "e2e/web/zero_ms", Value: 50, Unit: "ms", Better: BetterLower},
	}}
	if regs := Compare(old, noisy, 0.20); len(regs) != 0 {
		t.Errorf("skip rules violated: %v", regs)
	}
}

// TestExperimentReportsValidate: the flatteners for all three dvbench
// experiments produce schema-valid reports with the stable slash-separated
// names CI diffs against.
func TestExperimentReportsValidate(t *testing.T) {
	st := &Storage{Rows: []StorageRow{{
		Scenario: "web", Codec: "auto", RawBytes: 1 << 20, SavedBytes: 1 << 17,
		SaveSeconds: 0.2, OpenSeconds: 0.1,
	}}}
	e := &E2E{Rows: []E2ERow{{
		Scenario: "desktop", Steps: 4000, RecordSeconds: 1, SaveSeconds: 0.5,
		OpenSeconds: 0.25, ProbeSeconds: 0.125, ArchiveBytes: 1 << 19,
	}}}
	rm := &Remote{Rows: []RemoteRow{{
		Clients: 4, Frames: 100, FanoutSeconds: 0.5,
		FramesSent: 400, BytesSent: 1 << 22, SearchAvgMs: 1.5,
	}}}

	for _, tc := range []struct {
		report *Report
		want   string
	}{
		{st.Report(), "storage/web/auto/ratio"},
		{e.Report(), "e2e/desktop/total_ms"},
		{rm.Report(), "remote/4clients/frames_per_sec"},
	} {
		if err := ValidateReport(tc.report); err != nil {
			t.Errorf("%s report invalid: %v", tc.report.Name, err)
		}
		found := false
		for _, m := range tc.report.Metrics {
			if m.Name == tc.want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s report missing metric %q", tc.report.Name, tc.want)
		}
	}

	// A report written by one flattener and reloaded compares cleanly
	// against itself: zero regressions at any threshold.
	path := filepath.Join(t.TempDir(), "BENCH_e2e.json")
	if err := WriteReport(path, e.Report()); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if regs := Compare(loaded, loaded, 0.0001); len(regs) != 0 {
		t.Errorf("self-comparison found regressions: %v", regs)
	}
}
