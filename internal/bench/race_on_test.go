//go:build race

package bench

// raceEnabled reports that the race detector is active; host-time
// performance assertions relax under its ~5-10x slowdown.
const raceEnabled = true
