package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"dejaview/internal/compress"
	"dejaview/internal/record"
)

// StorageRow compares one scenario's display record as the raw v1
// encoding versus the v2 compressed container written by Store.Save,
// under one codec.
type StorageRow struct {
	Scenario string
	// Codec is the codec the container was packed with ("raw", "flate",
	// "lzs", "auto").
	Codec string
	// RawBytes is the in-memory (v1 on-disk) size of the three streams
	// plus metadata.
	RawBytes int64
	// SavedBytes is the v2 container's on-disk size.
	SavedBytes int64
	// SaveSeconds and OpenSeconds are host wall-clock costs of the
	// compressed Save and Open.
	SaveSeconds, OpenSeconds float64
}

// Ratio is the compressed fraction of the raw size.
func (r StorageRow) Ratio() float64 {
	if r.RawBytes == 0 {
		return 1
	}
	return float64(r.SavedBytes) / float64(r.RawBytes)
}

// PackMBPerSec is the end-to-end save throughput over the raw payload
// (compression plus staging I/O), the number the codec comparison is
// judged on.
func (r StorageRow) PackMBPerSec() float64 {
	if r.SaveSeconds <= 0 {
		return 0
	}
	return float64(r.RawBytes) / 1e6 / r.SaveSeconds
}

// Storage is the `dvbench -storage` report.
type Storage struct {
	Rows []StorageRow
}

// DefaultStorageCodecs is the codec set RunStorage measures when none is
// given: just the production default.
var DefaultStorageCodecs = []string{"auto"}

// RunStorage measures the default codec over the given scenarios.
func RunStorage(scenarios ...string) (*Storage, error) {
	return RunStorageCodecs(nil, scenarios...)
}

// RunStorageCodecs records each scenario once, then saves its display
// record through the parallel block-compression pipeline once per
// requested codec, reporting compressed vs. raw sizes and save/open cost
// side by side (the paper's Fig. 4 storage argument: compression is what
// keeps always-on recording to a few GB per day; the per-codec rows are
// what justify the native LZSS path over stdlib flate).
func RunStorageCodecs(codecs []string, scenarios ...string) (*Storage, error) {
	if len(codecs) == 0 {
		codecs = DefaultStorageCodecs
	}
	ids := make([]uint8, len(codecs))
	for i, name := range codecs {
		id, ok := compress.CodecIDByName(name)
		if !ok {
			return nil, fmt.Errorf("storage: unknown codec %q (want raw|flate|lzs|auto)", name)
		}
		ids[i] = id
	}
	out := &Storage{}
	for _, sc := range filterScenarios(allScenarios(), scenarios) {
		s, _, err := runScenario(sc, benchConfig(), 4000)
		if err != nil {
			return nil, fmt.Errorf("storage %s: %w", sc.Name, err)
		}
		s.Recorder().Flush()
		store := s.Recorder().Store()
		raw := store.CommandBytes() + store.ScreenshotBytes() +
			int64(len(store.Timeline()))*32 + 16

		for i, name := range codecs {
			store.SetCompression(compress.Options{}.WithCodec(ids[i]))
			row, err := saveOnce(store, sc.Name, name, raw)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// saveOnce saves store under its current compression options into a
// fresh temp dir, measures save/open cost, and sums the on-disk size.
func saveOnce(store *record.Store, scenario, codec string, raw int64) (StorageRow, error) {
	dir, err := os.MkdirTemp("", "dvstorage")
	if err != nil {
		return StorageRow{}, err
	}
	defer os.RemoveAll(dir)
	saveDir := filepath.Join(dir, "rec")
	saveSec, err := hostSeconds(func() error { return store.Save(saveDir) })
	if err != nil {
		return StorageRow{}, fmt.Errorf("storage %s/%s: save: %w", scenario, codec, err)
	}
	var saved int64
	entries, err := os.ReadDir(saveDir)
	if err != nil {
		return StorageRow{}, err
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			return StorageRow{}, err
		}
		saved += fi.Size()
	}
	openSec, err := hostSeconds(func() error {
		_, err := record.Open(saveDir)
		return err
	})
	if err != nil {
		return StorageRow{}, fmt.Errorf("storage %s/%s: open: %w", scenario, codec, err)
	}
	return StorageRow{
		Scenario:    scenario,
		Codec:       codec,
		RawBytes:    raw,
		SavedBytes:  saved,
		SaveSeconds: saveSec,
		OpenSeconds: openSec,
	}, nil
}

// Render prints the compressed-vs-raw table.
func (s *Storage) Render() string {
	t := &table{header: []string{"Scenario", "Codec", "Raw MB", "Saved MB", "Ratio", "Save ms", "Pack MB/s", "Open ms"}}
	for _, r := range s.Rows {
		t.add(r.Scenario, r.Codec,
			fmt.Sprintf("%.2f", float64(r.RawBytes)/1e6),
			fmt.Sprintf("%.2f", float64(r.SavedBytes)/1e6),
			fmt.Sprintf("%.3f", r.Ratio()),
			fmt.Sprintf("%.1f", r.SaveSeconds*1e3),
			fmt.Sprintf("%.1f", r.PackMBPerSec()),
			fmt.Sprintf("%.1f", r.OpenSeconds*1e3))
	}
	return "Storage: display record, compressed v2 container vs raw v1 encoding, per codec\n" + t.String()
}
