package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"dejaview/internal/record"
)

// StorageRow compares one scenario's display record as the raw v1
// encoding versus the v2 compressed container written by Store.Save.
type StorageRow struct {
	Scenario string
	// RawBytes is the in-memory (v1 on-disk) size of the three streams
	// plus metadata.
	RawBytes int64
	// SavedBytes is the v2 container's on-disk size.
	SavedBytes int64
	// SaveSeconds and OpenSeconds are host wall-clock costs of the
	// compressed Save and Open.
	SaveSeconds, OpenSeconds float64
}

// Ratio is the compressed fraction of the raw size.
func (r StorageRow) Ratio() float64 {
	if r.RawBytes == 0 {
		return 1
	}
	return float64(r.SavedBytes) / float64(r.RawBytes)
}

// Storage is the `dvbench -experiment storage` report.
type Storage struct {
	Rows []StorageRow
}

// RunStorage records each scenario, then saves its display record
// through the parallel block-compression pipeline and reports compressed
// vs. raw stream sizes (the paper's Fig. 4 storage argument: compression
// is what keeps always-on recording to a few GB per day).
func RunStorage(scenarios ...string) (*Storage, error) {
	out := &Storage{}
	for _, sc := range filterScenarios(allScenarios(), scenarios) {
		s, _, err := runScenario(sc, benchConfig(), 4000)
		if err != nil {
			return nil, fmt.Errorf("storage %s: %w", sc.Name, err)
		}
		s.Recorder().Flush()
		store := s.Recorder().Store()
		raw := store.CommandBytes() + store.ScreenshotBytes() +
			int64(len(store.Timeline()))*32 + 16

		dir, err := os.MkdirTemp("", "dvstorage")
		if err != nil {
			return nil, err
		}
		saveDir := filepath.Join(dir, "rec")
		saveSec, err := hostSeconds(func() error { return store.Save(saveDir) })
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("storage %s: save: %w", sc.Name, err)
		}
		var saved int64
		entries, err := os.ReadDir(saveDir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		for _, e := range entries {
			fi, err := e.Info()
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			saved += fi.Size()
		}
		openSec, err := hostSeconds(func() error {
			_, err := record.Open(saveDir)
			return err
		})
		os.RemoveAll(dir)
		if err != nil {
			return nil, fmt.Errorf("storage %s: open: %w", sc.Name, err)
		}
		out.Rows = append(out.Rows, StorageRow{
			Scenario:   sc.Name,
			RawBytes:   raw,
			SavedBytes: saved,
			SaveSeconds: saveSec,
			OpenSeconds: openSec,
		})
	}
	return out, nil
}

// Render prints the compressed-vs-raw table.
func (s *Storage) Render() string {
	t := &table{header: []string{"Scenario", "Raw MB", "Saved MB", "Ratio", "Save ms", "Open ms"}}
	for _, r := range s.Rows {
		t.add(r.Scenario,
			fmt.Sprintf("%.2f", float64(r.RawBytes)/1e6),
			fmt.Sprintf("%.2f", float64(r.SavedBytes)/1e6),
			fmt.Sprintf("%.3f", r.Ratio()),
			fmt.Sprintf("%.1f", r.SaveSeconds*1e3),
			fmt.Sprintf("%.1f", r.OpenSeconds*1e3))
	}
	return "Storage: display record, compressed v2 container vs raw v1 encoding\n" + t.String()
}
