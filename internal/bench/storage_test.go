package bench

import (
	"strings"
	"testing"
)

func TestRunStorage(t *testing.T) {
	st, err := RunStorage("cat", "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Rows) != 2 {
		t.Fatalf("rows = %d", len(st.Rows))
	}
	for _, r := range st.Rows {
		if r.RawBytes <= 0 || r.SavedBytes <= 0 {
			t.Errorf("%s: empty sizes %+v", r.Scenario, r)
		}
		// The acceptance bar: the v2 container is ≥40% smaller than the
		// raw v1 encoding on session-shaped workloads.
		if r.Ratio() > 0.6 {
			t.Errorf("%s: compressed to only %.0f%% of raw, want ≤60%%",
				r.Scenario, 100*r.Ratio())
		}
	}
	out := st.Render()
	if !strings.Contains(out, "cat") || !strings.Contains(out, "Ratio") {
		t.Errorf("render missing fields: %q", out)
	}
}
