package bench

import (
	"strings"
	"testing"
)

func TestRunStorage(t *testing.T) {
	st, err := RunStorage("cat", "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Rows) != 2 {
		t.Fatalf("rows = %d", len(st.Rows))
	}
	for _, r := range st.Rows {
		if r.Codec != "auto" {
			t.Errorf("%s: default codec %q, want auto", r.Scenario, r.Codec)
		}
		if r.RawBytes <= 0 || r.SavedBytes <= 0 {
			t.Errorf("%s: empty sizes %+v", r.Scenario, r)
		}
		// The acceptance bar: the v2 container is ≥40% smaller than the
		// raw v1 encoding on session-shaped workloads.
		if r.Ratio() > 0.6 {
			t.Errorf("%s: compressed to only %.0f%% of raw, want ≤60%%",
				r.Scenario, 100*r.Ratio())
		}
	}
	out := st.Render()
	if !strings.Contains(out, "cat") || !strings.Contains(out, "Ratio") {
		t.Errorf("render missing fields: %q", out)
	}
}

// TestRunStorageCodecs locks the per-codec comparison shape: one row per
// (scenario, codec), each codec's container decodes (Open succeeded
// inside the run), and the adaptive and LZS codecs land within striking
// distance of flate's ratio on a session-shaped workload.
func TestRunStorageCodecs(t *testing.T) {
	st, err := RunStorageCodecs([]string{"flate", "lzs", "auto"}, "cat")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(st.Rows))
	}
	byCodec := map[string]StorageRow{}
	for _, r := range st.Rows {
		byCodec[r.Codec] = r
		if r.SavedBytes <= 0 {
			t.Errorf("%s/%s: empty container", r.Scenario, r.Codec)
		}
	}
	flate, lzs, auto := byCodec["flate"], byCodec["lzs"], byCodec["auto"]
	// Ratio bar: lzs and auto stay close to flate. The slack is relative
	// plus a small absolute term so near-zero ratios (cat compresses to
	// under 1% either way) don't trip on meaningless relative deltas.
	for name, r := range map[string]StorageRow{"lzs": lzs, "auto": auto} {
		if r.Ratio() > flate.Ratio()*1.10+0.05 {
			t.Errorf("%s ratio %.4f vs flate %.4f: worse than 10%%+0.05",
				name, r.Ratio(), flate.Ratio())
		}
	}
	if _, err := RunStorageCodecs([]string{"bogus"}, "cat"); err == nil {
		t.Error("unknown codec accepted")
	}
}
