package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Machine-readable benchmark reports. Each experiment flattens its rows
// into a flat metric list under stable slash-separated names
// (`<experiment>/<scenario>/<measure>`), so CI can diff two runs without
// knowing any experiment's row shape. dvbench -json writes them as
// BENCH_<experiment>.json; dvbench -compare diffs two files and flags
// regressions beyond a threshold.

// Metric direction markers. A metric with no direction is informational
// and never flagged by Compare.
const (
	BetterLower  = "lower"
	BetterHigher = "higher"
)

// Metric is one measured value.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// Better is "lower", "higher", or empty (informational).
	Better string `json:"better,omitempty"`
}

// Report is one experiment's full result set.
type Report struct {
	// Name is the experiment name ("storage", "e2e", "remote").
	Name    string   `json:"name"`
	Metrics []Metric `json:"metrics"`
}

// ValidateReport checks the schema invariants Compare and CI tooling
// rely on: a named report, uniquely named metrics, finite values, and
// known direction markers.
func ValidateReport(r *Report) error {
	if r.Name == "" {
		return fmt.Errorf("bench: report has no name")
	}
	seen := make(map[string]bool, len(r.Metrics))
	for i, m := range r.Metrics {
		if m.Name == "" {
			return fmt.Errorf("bench: report %s: metric %d has no name", r.Name, i)
		}
		if seen[m.Name] {
			return fmt.Errorf("bench: report %s: duplicate metric %q", r.Name, m.Name)
		}
		seen[m.Name] = true
		if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
			return fmt.Errorf("bench: report %s: metric %q value %v", r.Name, m.Name, m.Value)
		}
		if m.Better != "" && m.Better != BetterLower && m.Better != BetterHigher {
			return fmt.Errorf("bench: report %s: metric %q direction %q", r.Name, m.Name, m.Better)
		}
	}
	return nil
}

// WriteReport validates r and writes it to path as indented JSON.
func WriteReport(path string, r *Report) error {
	if err := ValidateReport(r); err != nil {
		return err
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadReport reads and validates a report written by WriteReport.
func LoadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := ValidateReport(&r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// Regression is one metric that moved the wrong way beyond threshold.
type Regression struct {
	Metric   string
	Unit     string
	Old, New float64
	// ChangePct is the relative change in the bad direction, e.g. 110 for
	// a lower-is-better metric that more than doubled.
	ChangePct float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.4g -> %.4g %s (%+.1f%%)", r.Metric, r.Old, r.New, r.Unit, r.ChangePct)
}

// Compare diffs two reports and returns every directional metric present
// in both whose value moved in the bad direction by more than threshold
// (0.20 = 20%). Metrics present in only one report, informational
// metrics, and zero baselines (no meaningful ratio) are skipped.
func Compare(old, new_ *Report, threshold float64) []Regression {
	prev := make(map[string]Metric, len(old.Metrics))
	for _, m := range old.Metrics {
		prev[m.Name] = m
	}
	var out []Regression
	for _, m := range new_.Metrics {
		o, ok := prev[m.Name]
		if !ok || m.Better == "" || o.Value == 0 {
			continue
		}
		change := (m.Value - o.Value) / o.Value
		bad := false
		switch m.Better {
		case BetterLower:
			bad = change > threshold
		case BetterHigher:
			bad = change < -threshold
		}
		if bad {
			out = append(out, Regression{
				Metric:    m.Name,
				Unit:      m.Unit,
				Old:       o.Value,
				New:       m.Value,
				ChangePct: change * 100,
			})
		}
	}
	return out
}

// Report flattens the storage experiment. Metric names carry the codec
// (`storage/<scenario>/<codec>/<measure>`), so baselines generated with
// one codec set compare cleanly against runs with a subset.
func (s *Storage) Report() *Report {
	r := &Report{Name: "storage"}
	for _, row := range s.Rows {
		p := "storage/" + row.Scenario + "/" + row.Codec + "/"
		r.Metrics = append(r.Metrics,
			Metric{Name: p + "raw_bytes", Value: float64(row.RawBytes), Unit: "bytes"},
			Metric{Name: p + "saved_bytes", Value: float64(row.SavedBytes), Unit: "bytes", Better: BetterLower},
			Metric{Name: p + "ratio", Value: row.Ratio(), Unit: "ratio", Better: BetterLower},
			Metric{Name: p + "save_ms", Value: row.SaveSeconds * 1e3, Unit: "ms", Better: BetterLower},
			Metric{Name: p + "pack_mb_per_sec", Value: row.PackMBPerSec(), Unit: "MB/s", Better: BetterHigher},
			Metric{Name: p + "open_ms", Value: row.OpenSeconds * 1e3, Unit: "ms", Better: BetterLower},
		)
	}
	return r
}

// Report flattens the e2e experiment.
func (e *E2E) Report() *Report {
	r := &Report{Name: "e2e"}
	for _, row := range e.Rows {
		p := "e2e/" + row.Scenario + "/"
		r.Metrics = append(r.Metrics,
			Metric{Name: p + "steps", Value: float64(row.Steps), Unit: "count"},
			Metric{Name: p + "record_ms", Value: row.RecordSeconds * 1e3, Unit: "ms", Better: BetterLower},
			Metric{Name: p + "save_ms", Value: row.SaveSeconds * 1e3, Unit: "ms", Better: BetterLower},
			Metric{Name: p + "open_ms", Value: row.OpenSeconds * 1e3, Unit: "ms", Better: BetterLower},
			Metric{Name: p + "probe_ms", Value: row.ProbeSeconds * 1e3, Unit: "ms", Better: BetterLower},
			Metric{Name: p + "total_ms", Value: row.Total() * 1e3, Unit: "ms", Better: BetterLower},
			Metric{Name: p + "archive_bytes", Value: float64(row.ArchiveBytes), Unit: "bytes", Better: BetterLower},
		)
	}
	return r
}

// Report flattens the fleet experiment. Aggregate and worst-tenant
// throughput are directional; the per-session spread, submit tail
// latency, and admission-reject count are informational (rejects are
// asserted to be zero by the fleet tests, not thresholded by Compare).
func (f *Fleet) Report() *Report {
	r := &Report{Name: "fleet"}
	for _, row := range f.Rows {
		p := fmt.Sprintf("fleet/%dx%d/", row.Sessions, row.Viewers)
		r.Metrics = append(r.Metrics,
			Metric{Name: p + "fanout_ms", Value: row.FanoutSeconds * 1e3, Unit: "ms", Better: BetterLower},
			Metric{Name: p + "frames_per_sec", Value: row.FramesPerSec(), Unit: "fps", Better: BetterHigher},
			Metric{Name: p + "mb_per_sec", Value: row.MBPerSec(), Unit: "MB/s", Better: BetterHigher},
			Metric{Name: p + "session_min_fps", Value: row.SessionMinFPS, Unit: "fps", Better: BetterHigher},
			Metric{Name: p + "session_max_fps", Value: row.SessionMaxFPS, Unit: "fps"},
			Metric{Name: p + "submit_p99_ms", Value: row.SubmitP99Ms, Unit: "ms"},
			Metric{Name: p + "admission_rejects", Value: float64(row.AdmissionRejects), Unit: "count"},
		)
	}
	return r
}

// Report flattens the remote experiment.
func (rm *Remote) Report() *Report {
	r := &Report{Name: "remote"}
	for _, row := range rm.Rows {
		p := fmt.Sprintf("remote/%dclients/", row.Clients)
		r.Metrics = append(r.Metrics,
			Metric{Name: p + "fanout_ms", Value: row.FanoutSeconds * 1e3, Unit: "ms", Better: BetterLower},
			Metric{Name: p + "frames_per_sec", Value: row.FramesPerSec(), Unit: "fps", Better: BetterHigher},
			Metric{Name: p + "mb_per_sec", Value: row.MBPerSec(), Unit: "MB/s", Better: BetterHigher},
			Metric{Name: p + "search_avg_ms", Value: row.SearchAvgMs, Unit: "ms", Better: BetterLower},
		)
	}
	return r
}
