package bench

import (
	"fmt"
	"math/rand"

	"dejaview/internal/core"
	"dejaview/internal/index"
	"dejaview/internal/playback"
	"dejaview/internal/simclock"
)

// Fig5Row is one scenario's browse and search latency (host
// milliseconds).
type Fig5Row struct {
	Scenario string
	BrowseMS float64
	SearchMS float64
	Queries  int
	Points   int
}

// Fig5 is the browse/search latency experiment: five single-word queries
// of vocabulary sampled from each application's own index (ten multi-word
// constrained queries for the desktop trace), and browse operations at
// recorded points with at least 100 display commands since the previous
// point — idle stretches are excluded, as in the paper.
//
// Expected shape: both interactive (search ≤ browse; browse cheapest for
// video — one command per frame to replay — and dearest for web/desktop).
type Fig5 struct {
	Rows []Fig5Row
}

// RunFig5 executes the experiment.
func RunFig5(scenarios ...string) (*Fig5, error) {
	out := &Fig5{}
	for _, sc := range filterScenarios(allScenarios(), scenarios) {
		s, _, err := runScenario(sc, benchConfig(), 4000)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", sc.Name, err)
		}
		row := Fig5Row{Scenario: sc.Name}

		// --- search latency ---
		queries := buildQueries(s, sc.Name == "desktop")
		row.Queries = len(queries)
		if len(queries) > 0 {
			secs, err := hostSeconds(func() error {
				for _, q := range queries {
					if _, err := s.Index().Search(q, s.Clock().Now()); err != nil &&
						err != index.ErrEmptyQuery {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("fig5 %s search: %w", sc.Name, err)
			}
			row.SearchMS = secs * 1000 / float64(len(queries))
		}

		// --- browse latency ---
		points := browsePoints(s, 100)
		row.Points = len(points)
		if len(points) > 0 {
			secs, err := hostSeconds(func() error {
				for _, t := range points {
					// Fresh player per point: no keyframe cache, the
					// conservative browse cost.
					p := playback.New(s.Recorder().Store(), 0)
					if err := p.SeekTo(t); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("fig5 %s browse: %w", sc.Name, err)
			}
			row.BrowseMS = secs * 1000 / float64(len(points))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// buildQueries samples query terms from the session's own vocabulary.
func buildQueries(s *core.Session, desktop bool) []index.Query {
	if !desktop {
		terms := s.Index().RandomTerms(5, 99)
		qs := make([]index.Query, 0, len(terms))
		for _, t := range terms {
			qs = append(qs, index.Query{All: []string{t}})
		}
		return qs
	}
	// Desktop: ten multi-word queries, a subset constrained to apps and
	// time ranges, mimicking expected user behaviour.
	terms := s.Index().RandomTerms(20, 99)
	if len(terms) < 2 {
		return nil
	}
	now := s.Clock().Now()
	var qs []index.Query
	for i := 0; i < 10; i++ {
		q := index.Query{All: []string{terms[i%len(terms)], terms[(i+1)%len(terms)]}}
		switch i % 3 {
		case 1:
			q.App = "Firefox"
		case 2:
			q.From = now / 4
			q.To = now / 2
		}
		qs = append(qs, q)
	}
	return qs
}

// browsePoints samples timestamps with at least minCmds commands since
// the previously sampled point.
func browsePoints(s *core.Session, minCmds int) []simclock.Time {
	s.Recorder().Flush()
	store := s.Recorder().Store()
	var points []simclock.Time
	count := 0
	for off := int64(0); off < store.EndOfCommands(); {
		c, next, err := store.DecodeCommandAt(off)
		if err != nil {
			break
		}
		count++
		if count >= minCmds {
			points = append(points, c.Time)
			count = 0
		}
		off = next
	}
	// Shuffle deterministically so seeks are not monotone.
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(points), func(i, j int) { points[i], points[j] = points[j], points[i] })
	if len(points) > 25 {
		points = points[:25]
	}
	return points
}

// Render prints the latency table.
func (f *Fig5) Render() string {
	t := &table{header: []string{"Scenario", "Browse (ms)", "Search (ms)", "Points", "Queries"}}
	for _, r := range f.Rows {
		t.add(r.Scenario,
			fmt.Sprintf("%.3f", r.BrowseMS),
			fmt.Sprintf("%.3f", r.SearchMS),
			fmt.Sprint(r.Points),
			fmt.Sprint(r.Queries))
	}
	return "Figure 5: browse and search latency (host ms per operation)\n" + t.String()
}
