package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"dejaview/internal/core"
	"dejaview/internal/e2e"
)

// E2ERow is one scenario's wall-clock breakdown of a full pipeline
// cycle: record the scripted workload, save the archive, reopen it,
// run every probe query, and replay a hit substream (plus a revive, the
// paper's TakeMeBack).
type E2ERow struct {
	Scenario string
	Steps    int
	// Seconds of host wall clock per stage.
	RecordSeconds float64
	SaveSeconds   float64
	OpenSeconds   float64
	ProbeSeconds  float64
	// ArchiveBytes is the on-disk size of the saved archive.
	ArchiveBytes int64
}

// Total is the whole cycle's wall clock.
func (r E2ERow) Total() float64 {
	return r.RecordSeconds + r.SaveSeconds + r.OpenSeconds + r.ProbeSeconds
}

// E2E is the `dvbench -e2e` report.
type E2E struct {
	Rows []E2ERow
}

// RunE2E drives each internal/e2e scenario through one complete
// record→save→open→search→replay→revive cycle and reports per-stage
// host wall clock. It reuses the exact scripted workloads the scenario
// tests assert correctness over, so the numbers describe the tested
// path.
func RunE2E(scenarios ...string) (*E2E, error) {
	out := &E2E{}
	for _, sc := range e2e.Scenarios() {
		if len(scenarios) > 0 && !containsName(scenarios, sc.Name) {
			continue
		}
		row := E2ERow{Scenario: sc.Name, Steps: sc.Steps}

		var s *core.Session
		sec, err := hostSeconds(func() error {
			var err error
			s, err = e2e.Build(sc, core.Config{})
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("e2e %s: record: %w", sc.Name, err)
		}
		row.RecordSeconds = sec

		tmp, err := os.MkdirTemp("", "dve2e")
		if err != nil {
			return nil, err
		}
		dir := filepath.Join(tmp, "archive")
		sec, err = hostSeconds(func() error { return s.SaveArchive(dir) })
		if err != nil {
			os.RemoveAll(tmp)
			return nil, fmt.Errorf("e2e %s: save: %w", sc.Name, err)
		}
		row.SaveSeconds = sec
		filepath.WalkDir(dir, func(_ string, d os.DirEntry, err error) error {
			if err == nil && !d.IsDir() {
				if fi, err := d.Info(); err == nil {
					row.ArchiveBytes += fi.Size()
				}
			}
			return nil
		})

		var a *core.Archive
		sec, err = hostSeconds(func() error {
			var err error
			a, err = core.OpenArchive(dir)
			return err
		})
		if err != nil {
			os.RemoveAll(tmp)
			return nil, fmt.Errorf("e2e %s: open: %w", sc.Name, err)
		}
		row.OpenSeconds = sec

		sec, err = hostSeconds(func() error {
			_, err := e2e.Snapshot(e2e.Archived(a), sc.Queries)
			return err
		})
		os.RemoveAll(tmp)
		if err != nil {
			return nil, fmt.Errorf("e2e %s: probe: %w", sc.Name, err)
		}
		row.ProbeSeconds = sec
		out.Rows = append(out.Rows, row)
	}
	if len(out.Rows) == 0 {
		return nil, fmt.Errorf("e2e: no scenario matches %v", scenarios)
	}
	return out, nil
}

func containsName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// Render prints the per-stage wall-clock table.
func (e *E2E) Render() string {
	t := &table{header: []string{"Scenario", "Steps", "Record ms", "Save ms", "Open ms", "Probe ms", "Total ms", "Archive MB"}}
	for _, r := range e.Rows {
		t.add(r.Scenario,
			fmt.Sprintf("%d", r.Steps),
			fmt.Sprintf("%.1f", r.RecordSeconds*1e3),
			fmt.Sprintf("%.1f", r.SaveSeconds*1e3),
			fmt.Sprintf("%.1f", r.OpenSeconds*1e3),
			fmt.Sprintf("%.1f", r.ProbeSeconds*1e3),
			fmt.Sprintf("%.1f", r.Total()*1e3),
			fmt.Sprintf("%.2f", float64(r.ArchiveBytes)/1e6))
	}
	return "E2E: full record -> save -> open -> search -> replay -> revive cycle\n" + t.String()
}
