package bench

import (
	"fmt"

	"dejaview/internal/access"
	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/lfs"
	"dejaview/internal/playback"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
	"dejaview/internal/vexec"
	"dejaview/internal/workload"
)

// AblationCheckpoint compares the optimized checkpoint path (COW capture,
// incremental, pre-snapshot, deferred writeback) against the naive
// stop-and-copy baseline the paper says could not sustain 1/s.
type AblationCheckpoint struct {
	OptDowntime   simclock.Time
	NaiveDowntime simclock.Time
	// Sustainable1Hz reports whether each variant's downtime plus total
	// cost fits inside a one-second budget.
	OptSustainable, NaiveSustainable bool
}

// RunAblationCheckpoint measures both paths on an identical desktop-scale
// memory image (~64 MB live across several processes). The comparison is
// of the *sustained* once-per-second regime: both variants take an
// initial checkpoint, the workload dirties its per-second working set,
// and the second checkpoint is measured — incremental for the optimized
// path, unavoidably full (and synchronous) for the naive one.
func RunAblationCheckpoint() (*AblationCheckpoint, error) {
	type session struct {
		ck    *vexec.Checkpointer
		procs []*vexec.Process
		addrs []uint64
	}
	build := func() (*session, error) {
		clk := simclock.New()
		k := vexec.NewKernel(clk)
		fs := lfs.New()
		c := k.NewContainer(fs)
		s := &session{ck: vexec.NewCheckpointer(c, fs, fs, vexec.DefaultCostModel(), 100)}
		for i := 0; i < 4; i++ {
			p, err := c.Spawn(0, fmt.Sprintf("app%d", i))
			if err != nil {
				return nil, err
			}
			addr, err := p.Mem().Mmap(16384*vexec.PageSize, vexec.PermRead|vexec.PermWrite)
			if err != nil {
				return nil, err
			}
			// Touch a quarter of it (live working set).
			for j := uint64(0); j < 4096; j++ {
				if err := p.Mem().Write(addr+j*4*vexec.PageSize, []byte{byte(j)}); err != nil {
					return nil, err
				}
			}
			s.procs = append(s.procs, p)
			s.addrs = append(s.addrs, addr)
		}
		return s, nil
	}
	// The per-second working set: ~400 pages per process.
	dirty := func(s *session) error {
		for i, p := range s.procs {
			for j := uint64(0); j < 400; j++ {
				if err := p.Mem().Write(s.addrs[i]+j*8*vexec.PageSize, []byte{byte(j)}); err != nil {
					return err
				}
			}
		}
		return nil
	}

	opt, err := build()
	if err != nil {
		return nil, err
	}
	if _, err := opt.ck.Checkpoint(); err != nil {
		return nil, err
	}
	if err := dirty(opt); err != nil {
		return nil, err
	}
	optRes, err := opt.ck.Checkpoint()
	if err != nil {
		return nil, err
	}

	naive, err := build()
	if err != nil {
		return nil, err
	}
	if _, err := naive.ck.CheckpointNaive(); err != nil {
		return nil, err
	}
	if err := dirty(naive); err != nil {
		return nil, err
	}
	naiveRes, err := naive.ck.CheckpointNaive()
	if err != nil {
		return nil, err
	}
	return &AblationCheckpoint{
		OptDowntime:      optRes.Downtime(),
		NaiveDowntime:    naiveRes.Downtime(),
		OptSustainable:   optRes.Total() < simclock.Second,
		NaiveSustainable: naiveRes.Total() < simclock.Second,
	}, nil
}

// Render prints the comparison.
func (a *AblationCheckpoint) Render() string {
	yn := map[bool]string{true: "yes", false: "no"}
	t := &table{header: []string{"Variant", "Downtime (ms)", "Sustains 1/s"}}
	t.add("optimized (COW+incremental+deferred)", ms(a.OptDowntime), yn[a.OptSustainable])
	t.add("naive stop-and-copy", ms(a.NaiveDowntime), yn[a.NaiveSustainable])
	return "Ablation: checkpoint optimizations (§5.1.2)\n" + t.String()
}

// AblationDisplay compares command-log display recording against the
// periodic-full-screenshot (screencast) alternative §4.1 argues against.
type AblationDisplay struct {
	Scenario        string
	CommandLogMB    float64
	ScreencastMB    float64 // one full screenshot per second
	CommandLogRatio float64
}

// RunAblationDisplay measures both on the desktop trace.
func RunAblationDisplay() (*AblationDisplay, error) {
	s, stats, err := runScenario(workload.Desktop(), benchConfig(), 8000)
	if err != nil {
		return nil, err
	}
	rec := s.Recorder().Stats()
	w, h := s.Display().Size()
	perShot := int64(display.ScreenshotEncodedSize(w, h))
	shots := int64(stats.VirtualDuration / simclock.Second)
	cmdMB := float64(rec.CommandBytes+rec.ScreenshotBytes) / (1 << 20)
	scMB := float64(perShot*shots) / (1 << 20)
	return &AblationDisplay{
		Scenario:        "desktop",
		CommandLogMB:    cmdMB,
		ScreencastMB:    scMB,
		CommandLogRatio: scMB / cmdMB,
	}, nil
}

// Render prints the comparison.
func (a *AblationDisplay) Render() string {
	return fmt.Sprintf(`Ablation: command-log vs screenshot-per-second display recording (%s trace)
command log:  %.1f MB
screenshots:  %.1f MB (uncompressed, 1/s)
advantage:    %.0fx smaller
`, a.Scenario, a.CommandLogMB, a.ScreencastMB, a.CommandLogRatio)
}

// AblationMirror compares the daemon's mirror tree against per-event
// full-tree traversal (§4.2).
type AblationMirror struct {
	Events        int
	MirrorQueries uint64
	DirectQueries uint64
}

// RunAblationMirror replays an identical event stream into both capture
// strategies.
func RunAblationMirror() (*AblationMirror, error) {
	const nodes, events = 400, 200
	build := func(direct bool) (*access.Registry, *access.Application, *access.Component) {
		reg := access.NewRegistry()
		app := reg.Register("App", "app")
		win := app.AddComponent(nil, access.RoleWindow, "w", "")
		target := app.AddComponent(win, access.RoleTerminal, "", "x")
		for i := 0; i < nodes; i++ {
			app.AddComponent(win, access.RoleParagraph, "", fmt.Sprintf("line %d", i))
		}
		clk := simclock.New()
		sink := nullSink{}
		if direct {
			access.NewDirectCapture(reg, clk, sink)
		} else {
			access.NewDaemon(reg, clk, sink)
		}
		return reg, app, target
	}

	regM, appM, tgtM := build(false)
	q0 := regM.Queries()
	for i := 0; i < events; i++ {
		appM.SetText(tgtM, fmt.Sprintf("x%d", i))
	}
	mirror := regM.Queries() - q0

	regD, appD, tgtD := build(true)
	q0 = regD.Queries()
	for i := 0; i < events; i++ {
		appD.SetText(tgtD, fmt.Sprintf("x%d", i))
	}
	direct := regD.Queries() - q0

	return &AblationMirror{Events: events, MirrorQueries: mirror, DirectQueries: direct}, nil
}

type nullSink struct{}

func (nullSink) SetItem(simclock.Time, access.TextItem)       {}
func (nullSink) RemoveItem(simclock.Time, access.ComponentID) {}
func (nullSink) Annotate(t simclock.Time, i access.TextItem)  {}

// Render prints the comparison.
func (a *AblationMirror) Render() string {
	ratio := float64(a.DirectQueries) / float64(max(a.MirrorQueries, 1))
	return fmt.Sprintf(`Ablation: mirror tree vs per-event tree traversal (%d events, 400-node tree)
mirror tree:      %d accessibility round trips
full traversal:   %d accessibility round trips
advantage:        %.0fx fewer round trips
`, a.Events, a.MirrorQueries, a.DirectQueries, ratio)
}

// AblationDemandPaging compares eager uncached revives against
// demand-paged ones — the improvement the paper names for Figure 7's
// uncached latencies ("the uncached performance could be improved by
// demand paging").
type AblationDemandPaging struct {
	Scenario   string
	EagerMS    float64
	LazyMS     float64
	LazyPages  int
	EagerMB    float64
	LazyReadMB float64
}

// RunAblationDemandPaging measures both revive modes on the web
// scenario's final checkpoint (the paper's worst grower).
func RunAblationDemandPaging() (*AblationDemandPaging, error) {
	s, _, err := runScenario(workload.Web(), benchConfig(), 9500)
	if err != nil {
		return nil, err
	}
	counter := s.Checkpointer().Counter()

	s.Checkpointer().DropCaches()
	eager, err := s.ReviveCheckpointOpts(counter, vexec.RestoreOptions{})
	if err != nil {
		return nil, err
	}
	s.CloseRevived(eager)

	s.Checkpointer().DropCaches()
	lazy, err := s.ReviveCheckpointOpts(counter, vexec.RestoreOptions{DemandPaging: true})
	if err != nil {
		return nil, err
	}
	defer s.CloseRevived(lazy)
	return &AblationDemandPaging{
		Scenario:   "web",
		EagerMS:    float64(eager.Restore.Latency) / float64(simclock.Millisecond),
		LazyMS:     float64(lazy.Restore.Latency) / float64(simclock.Millisecond),
		LazyPages:  lazy.Restore.LazyPages,
		EagerMB:    float64(eager.Restore.BytesRead) / (1 << 20),
		LazyReadMB: float64(lazy.Restore.BytesRead) / (1 << 20),
	}, nil
}

// Render prints the comparison.
func (a *AblationDemandPaging) Render() string {
	t := &table{header: []string{"Revive mode", "Latency (ms)", "Read up front (MB)"}}
	t.add("eager (read everything first)", fmt.Sprintf("%.1f", a.EagerMS), fmt.Sprintf("%.1f", a.EagerMB))
	t.add("demand paging", fmt.Sprintf("%.1f", a.LazyMS), fmt.Sprintf("%.1f", a.LazyReadMB))
	return fmt.Sprintf("Ablation: demand-paged revive (%s, uncached; %d pages left to fault in)\n%s",
		a.Scenario, a.LazyPages, t.String())
}

// AblationKeyframeRow is one keyframe-interval setting's storage and
// seek-latency outcome.
type AblationKeyframeRow struct {
	Interval     simclock.Time
	ScreenshotMB float64
	AvgSeekCmds  float64
}

// AblationKeyframe sweeps the screenshot keyframe interval, the storage
// vs browse-latency trade-off behind §4.1's "long intervals" default.
type AblationKeyframe struct {
	Rows []AblationKeyframeRow
}

// RunAblationKeyframe executes the sweep on the cat scenario (dense
// display activity).
func RunAblationKeyframe() (*AblationKeyframe, error) {
	out := &AblationKeyframe{}
	for _, interval := range []simclock.Time{
		simclock.Second, 5 * simclock.Second, 30 * simclock.Second, 10 * simclock.Minute,
	} {
		cfg := benchConfig()
		cfg.Record = record.Options{
			ScreenshotInterval:  interval,
			ScreenshotMinChange: 0.001,
		}
		s := core.NewSession(cfg)
		if _, err := workload.Run(s, workload.Cat(), 9000); err != nil {
			return nil, err
		}
		s.Recorder().Flush()
		store := s.Recorder().Store()
		// Average commands replayed per random seek.
		var totalCmds int
		const seeks = 20
		for i := 0; i < seeks; i++ {
			p := playback.New(store, 0)
			t := store.Duration() * simclock.Time(i+1) / (seeks + 1)
			if err := p.SeekTo(t); err != nil {
				return nil, err
			}
			totalCmds += int(p.Stats().CommandsApplied + p.Stats().CommandsPruned)
		}
		out.Rows = append(out.Rows, AblationKeyframeRow{
			Interval:     interval,
			ScreenshotMB: float64(store.ScreenshotBytes()) / (1 << 20),
			AvgSeekCmds:  float64(totalCmds) / seeks,
		})
	}
	return out, nil
}

// Render prints the sweep.
func (a *AblationKeyframe) Render() string {
	t := &table{header: []string{"Keyframe interval", "Screenshot MB", "Avg cmds/seek"}}
	for _, r := range a.Rows {
		t.add(r.Interval.String(),
			fmt.Sprintf("%.1f", r.ScreenshotMB),
			fmt.Sprintf("%.0f", r.AvgSeekCmds))
	}
	return "Ablation: keyframe interval sweep (cat scenario)\n" + t.String()
}
