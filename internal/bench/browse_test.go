package bench

import (
	"strings"
	"testing"
)

func TestRunBrowse(t *testing.T) {
	b, err := RunBrowse("screentrack")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 1 {
		t.Fatalf("rows = %d", len(b.Rows))
	}
	r := b.Rows[0]
	if r.Thumbs < 5 {
		t.Errorf("strip has %d thumbs; too short to measure seeking", r.Thumbs)
	}
	if r.Revives == 0 {
		t.Error("no checkpoints revived; the pass never touched demand paging")
	}
	if r.Misses == 0 || r.Hits == 0 {
		t.Errorf("cache saw %d misses %d hits; instrumentation dead", r.Misses, r.Hits)
	}
	if hr := r.HitRate(); hr <= 0 || hr >= 1 {
		t.Errorf("hit rate %.2f out of range", hr)
	}
	// The acceptance bar: a warm seek pass is at least 2x faster than
	// the cold one. Timing ratios are meaningless under the race
	// detector's instrumentation, so only the clean build enforces it.
	if !raceEnabled && r.Speedup() < 2 {
		t.Errorf("warm pass only %.1fx faster than cold, want >= 2x", r.Speedup())
	}
	out := b.Render()
	if !strings.Contains(out, "screentrack") || !strings.Contains(out, "Hit rate") {
		t.Errorf("render missing fields: %q", out)
	}
	rep := b.Report()
	if rep.Name != "browse" || len(rep.Metrics) == 0 {
		t.Errorf("report malformed: %+v", rep)
	}
}
