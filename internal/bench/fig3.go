package bench

import (
	"fmt"

	"dejaview/internal/simclock"
)

// Fig3Row is one scenario's average checkpoint latency breakdown, in
// virtual milliseconds.
type Fig3Row struct {
	Scenario    string
	PreSnapshot simclock.Time // pre-checkpoint: FS sync
	PreQuiesce  simclock.Time // pre-checkpoint: signalability wait
	Quiesce     simclock.Time
	Capture     simclock.Time
	FSSnapshot  simclock.Time
	Writeback   simclock.Time
	Downtime    simclock.Time // quiesce + capture + fs snapshot
	MaxDowntime simclock.Time
}

// Fig3 is the total checkpoint latency experiment.
//
// Expected shape (paper): downtime < 10 ms for the application
// benchmarks and ~20 ms for the desktop trace, dominated by the COW
// capture (FS snapshot up to half for untar); pre-checkpoint and
// writeback dominate the total but overlap execution.
type Fig3 struct {
	Rows []Fig3Row
}

// RunFig3 executes the experiment.
func RunFig3(scenarios ...string) (*Fig3, error) {
	out := &Fig3{}
	for _, sc := range filterScenarios(allScenarios(), scenarios) {
		s, _, err := runScenario(sc, benchConfig(), 2000)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s: %w", sc.Name, err)
		}
		st := s.Checkpointer().Stats()
		n := simclock.Time(st.Checkpoints)
		if n == 0 {
			continue
		}
		out.Rows = append(out.Rows, Fig3Row{
			Scenario:    sc.Name,
			PreSnapshot: st.TotalPreSnapshot / n,
			PreQuiesce:  st.TotalPreQuiesce / n,
			Quiesce:     st.TotalQuiesce / n,
			Capture:     st.TotalCapture / n,
			FSSnapshot:  st.TotalFSSnapshot / n,
			Writeback:   st.TotalWriteback / n,
			Downtime:    st.TotalDowntime / n,
			MaxDowntime: st.MaxDowntime,
		})
	}
	return out, nil
}

// Render prints the breakdown table (all columns in milliseconds).
func (f *Fig3) Render() string {
	t := &table{header: []string{"Scenario", "PreSnap", "PreQuiesce", "Quiesce",
		"Capture", "FSSnap", "Writeback", "Downtime", "MaxDown"}}
	for _, r := range f.Rows {
		t.add(r.Scenario, ms(r.PreSnapshot), ms(r.PreQuiesce), ms(r.Quiesce),
			ms(r.Capture), ms(r.FSSnapshot), ms(r.Writeback), ms(r.Downtime), ms(r.MaxDowntime))
	}
	return "Figure 3: checkpoint latency breakdown (avg ms per checkpoint; downtime = quiesce+capture+fssnap)\n" + t.String()
}
