package bench

import (
	"strings"
	"testing"

	"dejaview/internal/simclock"
)

// Render smoke tests over hand-built results: the table formatting must
// hold without re-running the (slow) experiments.

func TestFig2Render(t *testing.T) {
	f := &Fig2{Rows: []Fig2Row{{Scenario: "web", Display: 1.09, Checkpoint: 1.05, Index: 1.99, Full: 2.15}}}
	out := f.Render()
	for _, want := range []string{"Figure 2", "web", "1.99", "2.15"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestFig3Render(t *testing.T) {
	f := &Fig3{Rows: []Fig3Row{{
		Scenario: "untar", PreSnapshot: 14 * simclock.Millisecond,
		Quiesce: simclock.Millisecond, Capture: 2 * simclock.Millisecond,
		FSSnapshot: 3 * simclock.Millisecond, Downtime: 6 * simclock.Millisecond,
	}}}
	out := f.Render()
	if !strings.Contains(out, "untar") || !strings.Contains(out, "6.00") {
		t.Errorf("render = %q", out)
	}
}

func TestFig4RenderAndTotal(t *testing.T) {
	r := Fig4Row{Scenario: "octave", Display: 0.1, Index: 0.01, FS: 0.02, Process: 7.5, ProcessCompressed: 1.3}
	if got := r.Total(); got != 7.63 {
		t.Errorf("Total = %v", got)
	}
	f := &Fig4{Rows: []Fig4Row{r}}
	if !strings.Contains(f.Render(), "octave") {
		t.Error("render missing row")
	}
}

func TestFig6Render(t *testing.T) {
	f := &Fig6{Rows: []Fig6Row{{Scenario: "desktop", Recorded: 10 * simclock.Minute, ReplaySec: 0.2, Speedup: 3000, Commands: 500}}}
	out := f.Render()
	if !strings.Contains(out, "3000x") {
		t.Errorf("render = %q", out)
	}
}

func TestFig7Render(t *testing.T) {
	f := &Fig7{Rows: []Fig7Row{{
		Scenario: "web",
		Points: []Fig7Point{
			{Counter: 5, UncachedMS: 150, CachedMS: 7, ImagesRead: 5, BytesRead: 8 << 20},
			{Counter: 10, UncachedMS: 250, CachedMS: 9, ImagesRead: 10, BytesRead: 10 << 20},
		},
	}}}
	out := f.Render()
	if !strings.Contains(out, "web") || !strings.Contains(out, "150.0") {
		t.Errorf("render = %q", out)
	}
	// The scenario name appears only on the first point row.
	if strings.Count(out, "web") != 1 {
		t.Errorf("scenario repeated: %q", out)
	}
}

func TestPolicyRender(t *testing.T) {
	p := &PolicyResult{Takes: 106, Skips: 494, TakenFraction: 0.18,
		NoActivity: 0.13, LowActivity: 0.38, TextRate: 0.15, Fullscreen: 0.33}
	out := p.Render()
	for _, want := range []string{"18%", "13%", "38%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestAblationRenders(t *testing.T) {
	a := &AblationCheckpoint{OptDowntime: simclock.Millisecond,
		NaiveDowntime: simclock.Second, OptSustainable: true}
	if !strings.Contains(a.Render(), "naive") {
		t.Error("checkpoint ablation render")
	}
	d := &AblationDisplay{Scenario: "desktop", CommandLogMB: 17, ScreencastMB: 1800, CommandLogRatio: 105}
	if !strings.Contains(d.Render(), "105x") {
		t.Error("display ablation render")
	}
	m := &AblationMirror{Events: 200, MirrorQueries: 200, DirectQueries: 322400}
	if !strings.Contains(m.Render(), "1612x") {
		t.Error("mirror ablation render")
	}
	k := &AblationKeyframe{Rows: []AblationKeyframeRow{{Interval: simclock.Second, ScreenshotMB: 30, AvgSeekCmds: 240}}}
	if !strings.Contains(k.Render(), "30.0") {
		t.Error("keyframe ablation render")
	}
	dp := &AblationDemandPaging{Scenario: "web", EagerMS: 480, LazyMS: 215, LazyPages: 4500, EagerMB: 18, LazyReadMB: 0.1}
	if !strings.Contains(dp.Render(), "demand paging") {
		t.Error("demand paging ablation render")
	}
}

func TestFilterScenarios(t *testing.T) {
	all := allScenarios()
	if got := filterScenarios(all, nil); len(got) != len(all) {
		t.Error("empty filter should keep all")
	}
	got := filterScenarios(all, []string{"web", "cat"})
	if len(got) != 2 {
		t.Errorf("filtered = %d", len(got))
	}
	if got := filterScenarios(all, []string{"nonexistent"}); len(got) != 0 {
		t.Error("unknown name matched")
	}
}
