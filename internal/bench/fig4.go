package bench

import (
	"fmt"
)

// Fig4Row is one scenario's storage growth rates in MB/s of virtual
// session time.
type Fig4Row struct {
	Scenario          string
	Display           float64 // command log + keyframes
	Index             float64 // text database
	FS                float64 // snapshot overhead beyond visible state
	Process           float64 // raw checkpoint images
	ProcessCompressed float64 // gzip'd checkpoint images
}

// Total sums the uncompressed streams.
func (r *Fig4Row) Total() float64 {
	return r.Display + r.Index + r.FS + r.Process
}

// Fig4 is the recording storage growth experiment.
//
// Expected shape (paper): checkpoints dominate everywhere except video
// (display-dominated, ~4 MB/s) and untar (FS-dominated); octave has the
// largest uncompressed process stream, shrinking ~5x compressed; the
// desktop trace is far more modest than the stress benchmarks and lands
// near HDTV-PVR rates (~2.5 MB/s uncompressed).
type Fig4 struct {
	Rows []Fig4Row
}

// RunFig4 executes the experiment.
func RunFig4(scenarios ...string) (*Fig4, error) {
	out := &Fig4{}
	for _, sc := range filterScenarios(allScenarios(), scenarios) {
		s, stats, err := runScenario(sc, benchConfig(), 3000)
		if err != nil {
			return nil, fmt.Errorf("fig4 %s: %w", sc.Name, err)
		}
		dur := stats.VirtualDuration
		rec := s.Recorder().Stats()
		ck := s.Checkpointer().Stats()
		fsStats := s.FS().Stats()
		fsOverhead := fsStats.LogBytes - s.FS().VisibleBytes()
		if fsOverhead < 0 {
			fsOverhead = 0
		}
		out.Rows = append(out.Rows, Fig4Row{
			Scenario:          sc.Name,
			Display:           mbps(rec.CommandBytes+rec.ScreenshotBytes, dur),
			Index:             mbps(s.Index().Bytes(), dur),
			FS:                mbps(fsOverhead, dur),
			Process:           mbps(ck.TotalBytes, dur),
			ProcessCompressed: mbps(ck.CompressedBytes, dur),
		})
	}
	return out, nil
}

// Render prints the growth-rate table.
func (f *Fig4) Render() string {
	t := &table{header: []string{"Scenario", "Display", "Index", "FS",
		"Process", "Proc(gz)", "Total"}}
	for _, r := range f.Rows {
		t.add(r.Scenario,
			fmt.Sprintf("%.2f", r.Display),
			fmt.Sprintf("%.3f", r.Index),
			fmt.Sprintf("%.2f", r.FS),
			fmt.Sprintf("%.2f", r.Process),
			fmt.Sprintf("%.2f", r.ProcessCompressed),
			fmt.Sprintf("%.2f", r.Total()))
	}
	return "Figure 4: recording storage growth (MB per second of session time)\n" + t.String()
}
