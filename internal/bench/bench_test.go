package bench

import (
	"strings"
	"testing"

	"dejaview/internal/simclock"
)

func TestTableRenderer(t *testing.T) {
	tb := &table{header: []string{"A", "LongHeader"}}
	tb.add("x", "1")
	tb.add("longer-cell", "2")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "A ") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
}

func TestTable1Renders(t *testing.T) {
	out := Table1()
	for _, name := range []string{"web", "video", "untar", "gzip", "make", "octave", "cat", "desktop"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %s", name)
		}
	}
}

func TestHelpers(t *testing.T) {
	if got := ms(1500 * simclock.Microsecond); got != "1.50" {
		t.Errorf("ms = %q", got)
	}
	if got := mbps(2<<20, 2*simclock.Second); got != 1.0 {
		t.Errorf("mbps = %v", got)
	}
	if got := mbps(100, 0); got != 0 {
		t.Errorf("mbps zero dur = %v", got)
	}
}

func TestFig3Subset(t *testing.T) {
	f, err := RunFig3("gzip", "cat")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 2 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	for _, r := range f.Rows {
		if r.Downtime != r.Quiesce+r.Capture+r.FSSnapshot {
			t.Errorf("%s: downtime decomposition broken", r.Scenario)
		}
		// The paper's headline: downtime below the 150 ms HCI threshold,
		// and below 10 ms for the application benchmarks.
		if r.Downtime > 10*simclock.Millisecond {
			t.Errorf("%s: avg downtime %v > 10ms", r.Scenario, r.Downtime)
		}
	}
	if !strings.Contains(f.Render(), "Figure 3") {
		t.Error("render header missing")
	}
}

func TestFig4Subset(t *testing.T) {
	f, err := RunFig4("video", "untar")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 2 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	byName := map[string]Fig4Row{}
	for _, r := range f.Rows {
		byName[r.Scenario] = r
	}
	v := byName["video"]
	if v.Display <= v.Process {
		t.Errorf("video: display %.2f should dominate process %.2f", v.Display, v.Process)
	}
	u := byName["untar"]
	if u.FS <= u.Display {
		t.Errorf("untar: FS %.2f should dominate display %.2f", u.FS, u.Display)
	}
	if !strings.Contains(f.Render(), "Figure 4") {
		t.Error("render header missing")
	}
}

func TestFig5Subset(t *testing.T) {
	f, err := RunFig5("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 1 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	r := f.Rows[0]
	if r.Queries == 0 {
		t.Error("no queries sampled")
	}
	// Interactive-rate bound (generous: paper reports <= 20ms search,
	// <= 200ms browse on 2007 hardware).
	if r.SearchMS > 200 {
		t.Errorf("search %.1fms not interactive", r.SearchMS)
	}
	if r.Points > 0 && r.BrowseMS > 500 {
		t.Errorf("browse %.1fms not interactive", r.BrowseMS)
	}
}

func TestFig6Subset(t *testing.T) {
	f, err := RunFig6("video", "cat")
	if err != nil {
		t.Fatal(err)
	}
	floor := 10.0
	if raceEnabled {
		// The race detector slows host-time replay ~5-10x; only sanity
		// is asserted under it.
		floor = 1.0
	}
	for _, r := range f.Rows {
		if r.Speedup < floor {
			t.Errorf("%s: speedup %.1fx below the %gx floor", r.Scenario, r.Speedup, floor)
		}
	}
}

func TestFig7Subset(t *testing.T) {
	f, err := RunFig7("web")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 1 || len(f.Rows[0].Points) != 5 {
		t.Fatalf("rows/points wrong: %+v", f.Rows)
	}
	pts := f.Rows[0].Points
	for _, p := range pts {
		if p.UncachedMS <= p.CachedMS {
			t.Errorf("ckpt %d: uncached %.1f <= cached %.1f", p.Counter, p.UncachedMS, p.CachedMS)
		}
	}
	// Web's uncached revive grows over the run (firefox heap growth).
	if pts[4].UncachedMS <= pts[0].UncachedMS {
		t.Errorf("web revive should grow: first %.1f, last %.1f",
			pts[0].UncachedMS, pts[4].UncachedMS)
	}
}

func TestPolicyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("long trace")
	}
	p, err := RunPolicy()
	if err != nil {
		t.Fatal(err)
	}
	if p.TakenFraction <= 0 || p.TakenFraction > 0.5 {
		t.Errorf("taken fraction %.2f; expected a minority", p.TakenFraction)
	}
	sum := p.NoActivity + p.LowActivity + p.TextRate + p.Fullscreen + p.RateLimited
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("skip distribution sums to %.2f", sum)
	}
	if !strings.Contains(p.Render(), "taken") {
		t.Error("render missing content")
	}
}

func TestAblationCheckpoint(t *testing.T) {
	a, err := RunAblationCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if a.NaiveDowntime < 10*a.OptDowntime {
		t.Errorf("naive %v vs optimized %v: want >= 10x", a.NaiveDowntime, a.OptDowntime)
	}
	if !a.OptSustainable {
		t.Error("optimized path should sustain 1/s")
	}
}

func TestAblationMirror(t *testing.T) {
	a, err := RunAblationMirror()
	if err != nil {
		t.Fatal(err)
	}
	if a.DirectQueries < 50*a.MirrorQueries {
		t.Errorf("direct %d vs mirror %d: want a large gap", a.DirectQueries, a.MirrorQueries)
	}
}

func TestAblationDemandPaging(t *testing.T) {
	a, err := RunAblationDemandPaging()
	if err != nil {
		t.Fatal(err)
	}
	if a.LazyMS >= a.EagerMS {
		t.Errorf("demand paging %.1fms should beat eager %.1fms", a.LazyMS, a.EagerMS)
	}
	if a.LazyPages == 0 {
		t.Error("no pages left lazy")
	}
	if a.LazyReadMB >= a.EagerMB {
		t.Error("demand paging should read less up front")
	}
}

func TestAblationKeyframe(t *testing.T) {
	if testing.Short() {
		t.Skip("several cat runs")
	}
	a, err := RunAblationKeyframe()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 4 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	// Longer intervals: less screenshot storage, more commands per seek.
	first, last := a.Rows[0], a.Rows[len(a.Rows)-1]
	if last.ScreenshotMB > first.ScreenshotMB {
		t.Errorf("screenshot storage should shrink with interval: %.1f -> %.1f",
			first.ScreenshotMB, last.ScreenshotMB)
	}
	if last.AvgSeekCmds < first.AvgSeekCmds {
		t.Errorf("seek work should grow with interval: %.0f -> %.0f",
			first.AvgSeekCmds, last.AvgSeekCmds)
	}
}
