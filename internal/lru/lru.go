// Package lru provides a small generic least-recently-used cache.
//
// DejaView uses LRU caching for search-result screenshots (§4.4) — "this
// provides significant speedup in cases where the user has to continuously
// go back to specific points in time" — and the playback engine uses it
// for decoded keyframes. The cache size is tunable, as the paper notes.
//
// Two budgeting modes share one implementation: New builds the classic
// count-bounded cache (every entry costs 1), NewBytes builds a
// byte-bounded cache where each entry carries an explicit cost (its
// decoded size) and eviction keeps the sum of resident costs within the
// budget. The byte mode backs the demand-page block cache that makes
// repeated time-machine seeks over cold archives cheap.
package lru

import (
	"container/list"
	"sync"
)

// Cache is an LRU cache mapping K to V. The zero value is not usable; use
// New or NewBytes. Cache is safe for concurrent use: search and playback
// share the screenshot cache across goroutines, and a block cache is
// shared by every stream of an archive.
type Cache[K comparable, V any] struct {
	mu     sync.Mutex
	budget int64 // max sum of resident costs; <= 0 disables caching
	used   int64 // sum of resident costs
	ll     *list.List
	items  map[K]*list.Element

	hits, misses uint64
	evictions    uint64 // entries removed to make room (not Purge)
	evictedCost  uint64 // total cost of those entries

	// onEvict, when set, observes each budget eviction. It is called with
	// the cache lock held and must not call back into the cache.
	onEvict func(k K, v V, cost int64)
}

type entry[K comparable, V any] struct {
	key  K
	val  V
	cost int64
}

// New creates a cache holding at most capacity entries; capacity <= 0
// disables caching (every lookup misses). Entries inserted with Put cost
// 1 each, so the budget is an entry count.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	return NewBytes[K, V](int64(capacity))
}

// NewBytes creates a cache whose resident entries' costs sum to at most
// budget; budget <= 0 disables caching. Costs are supplied per entry via
// PutCost; an entry whose cost alone exceeds the budget is not cached.
func NewBytes[K comparable, V any](budget int64) *Cache[K, V] {
	return &Cache[K, V]{
		budget: budget,
		ll:     list.New(),
		items:  make(map[K]*list.Element),
	}
}

// OnEvict registers fn to observe every entry evicted to fit the budget
// (Purge does not count). fn runs with the cache lock held and must not
// call back into the cache. Passing nil clears the hook.
func (c *Cache[K, V]) OnEvict(fn func(k K, v V, cost int64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onEvict = fn
}

// Get returns the cached value and whether it was present, refreshing its
// recency.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes a value at cost 1, evicting least recently
// used entries when over budget.
func (c *Cache[K, V]) Put(k K, v V) {
	c.PutCost(k, v, 1)
}

// PutCost inserts or refreshes a value with an explicit cost, evicting
// least recently used entries until the sum of resident costs fits the
// budget again. A value whose cost alone exceeds the budget is not
// cached (and does not disturb resident entries). Costs below 1 are
// clamped to 1 so a zero-cost flood cannot pin unbounded entries.
func (c *Cache[K, V]) PutCost(k K, v V, cost int64) {
	if cost < 1 {
		cost = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget <= 0 || cost > c.budget {
		return
	}
	if el, ok := c.items[k]; ok {
		e := el.Value.(*entry[K, V])
		c.used += cost - e.cost
		e.val, e.cost = v, cost
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&entry[K, V]{key: k, val: v, cost: cost})
		c.items[k] = el
		c.used += cost
	}
	for c.used > c.budget {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*entry[K, V])
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.used -= e.cost
		c.evictions++
		c.evictedCost += uint64(e.cost)
		if c.onEvict != nil {
			c.onEvict(e.key, e.val, e.cost)
		}
	}
}

// Len reports the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Used reports the sum of resident entry costs (the entry count for a
// cache built with New).
func (c *Cache[K, V]) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Budget reports the configured cost budget.
func (c *Cache[K, V]) Budget() int64 { return c.budget }

// Stats reports hit and miss counts since creation.
func (c *Cache[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// EvictStats reports how many entries budget pressure has evicted since
// creation and their total cost (Purge is not counted).
func (c *Cache[K, V]) EvictStats() (evictions, evictedCost uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions, c.evictedCost
}

// Purge empties the cache, keeping statistics.
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
	c.used = 0
}
