// Package lru provides a small generic least-recently-used cache.
//
// DejaView uses LRU caching for search-result screenshots (§4.4) — "this
// provides significant speedup in cases where the user has to continuously
// go back to specific points in time" — and the playback engine uses it
// for decoded keyframes. The cache size is tunable, as the paper notes.
package lru

import (
	"container/list"
	"sync"
)

// Cache is an LRU cache mapping K to V. The zero value is not usable; use
// New. Cache is safe for concurrent use: search and playback share the
// screenshot cache across goroutines.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[K]*list.Element

	hits, misses uint64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New creates a cache holding at most capacity entries; capacity <= 0
// disables caching (every lookup misses).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	return &Cache[K, V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[K]*list.Element),
	}
}

// Get returns the cached value and whether it was present, refreshing its
// recency.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes a value, evicting the least recently used entry
// when over capacity.
func (c *Cache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.items[k]; ok {
		el.Value.(*entry[K, V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&entry[K, V]{key: k, val: v})
	c.items[k] = el
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*entry[K, V]).key)
		}
	}
}

// Len reports the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports hit and miss counts since creation.
func (c *Cache[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Purge empties the cache, keeping statistics.
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}
