package lru

import (
	"testing"
	"testing/quick"
)

func TestCacheBasic(t *testing.T) {
	c := New[int, string](2)
	if _, ok := c.Get(1); ok {
		t.Error("empty cache hit")
	}
	c.Put(1, "a")
	c.Put(2, "b")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Errorf("Get(1) = %q, %v", v, ok)
	}
	// Insert third entry: 2 is LRU (1 was just touched) and must evict.
	c.Put(3, "c")
	if _, ok := c.Get(2); ok {
		t.Error("2 should have been evicted")
	}
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Error("1 should survive")
	}
	if v, ok := c.Get(3); !ok || v != "c" {
		t.Error("3 should be present")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCacheUpdateRefreshes(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 10)
	c.Put(2, 20)
	c.Put(1, 11) // refresh 1; 2 becomes LRU
	c.Put(3, 30)
	if _, ok := c.Get(2); ok {
		t.Error("2 should have been evicted after 1 was refreshed")
	}
	if v, _ := c.Get(1); v != 11 {
		t.Errorf("Get(1) = %d, want updated 11", v)
	}
}

func TestCacheZeroCapacity(t *testing.T) {
	c := New[int, int](0)
	c.Put(1, 1)
	if _, ok := c.Get(1); ok {
		t.Error("zero-capacity cache should never hit")
	}
	if c.Len() != 0 {
		t.Error("zero-capacity cache should stay empty")
	}
}

func TestCacheStats(t *testing.T) {
	c := New[int, int](4)
	c.Put(1, 1)
	c.Get(1)
	c.Get(2)
	c.Get(3)
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("stats = %d hits %d misses, want 1, 2", hits, misses)
	}
}

func TestCachePurge(t *testing.T) {
	c := New[int, int](4)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Purge()
	if c.Len() != 0 {
		t.Error("purge left entries")
	}
	if _, ok := c.Get(1); ok {
		t.Error("purged entry still retrievable")
	}
}

// Property: the cache never exceeds capacity and always returns the most
// recently Put value for a key.
func TestCacheInvariants(t *testing.T) {
	f := func(keys []uint8) bool {
		const cap = 8
		c := New[uint8, int](cap)
		last := map[uint8]int{}
		for i, k := range keys {
			c.Put(k, i)
			last[k] = i
			if c.Len() > cap {
				return false
			}
			if v, ok := c.Get(k); !ok || v != last[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
