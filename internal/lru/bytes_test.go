package lru

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// Byte-budget mode proofs: a model-checked invariant (the sum of
// resident costs never exceeds the budget and matches a reference LRU
// exactly), and a 16-goroutine contention test whose counters must add
// up precisely — run under -race by verify.sh.

// modelEntry mirrors one resident entry in the reference model.
type modelEntry struct {
	key  uint8
	val  int
	cost int64
}

// model is an unoptimized reference LRU: front of the slice is most
// recent.
type model struct {
	budget  int64
	entries []modelEntry
}

func (m *model) used() int64 {
	var s int64
	for _, e := range m.entries {
		s += e.cost
	}
	return s
}

func (m *model) find(k uint8) int {
	for i, e := range m.entries {
		if e.key == k {
			return i
		}
	}
	return -1
}

func (m *model) get(k uint8) (int, bool) {
	if i := m.find(k); i >= 0 {
		e := m.entries[i]
		m.entries = append([]modelEntry{e}, append(m.entries[:i:i], m.entries[i+1:]...)...)
		return e.val, true
	}
	return 0, false
}

func (m *model) put(k uint8, v int, cost int64) {
	if cost < 1 {
		cost = 1
	}
	if m.budget <= 0 || cost > m.budget {
		return
	}
	if i := m.find(k); i >= 0 {
		m.entries = append(m.entries[:i:i], m.entries[i+1:]...)
	}
	m.entries = append([]modelEntry{{k, v, cost}}, m.entries...)
	for m.used() > m.budget {
		m.entries = m.entries[:len(m.entries)-1]
	}
}

// op is one generated cache operation; quick fills the fields randomly.
type op struct {
	Kind uint8 // %3: 0 put, 1 get, 2 purge (purge made rare below)
	Key  uint8
	Val  int
	Cost int16
}

// TestByteBudgetModelQuick drives random operation sequences against the
// cache and the reference model in lockstep: every Get must agree, and
// after every step the cache's resident cost equals the model's and
// never exceeds the budget.
func TestByteBudgetModelQuick(t *testing.T) {
	check := func(budget int16, ops []op) bool {
		b := int64(budget)
		c := NewBytes[uint8, int](b)
		m := &model{budget: b}
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0:
				c.PutCost(o.Key, o.Val, int64(o.Cost))
				m.put(o.Key, o.Val, int64(o.Cost))
			case 1:
				gv, gok := c.Get(o.Key)
				wv, wok := m.get(o.Key)
				if gok != wok || (gok && gv != wv) {
					t.Logf("Get(%d) = (%d,%v), model (%d,%v)", o.Key, gv, gok, wv, wok)
					return false
				}
			case 2:
				// Purge only occasionally, or sequences never build depth.
				if o.Key%16 == 0 {
					c.Purge()
					m.entries = nil
				}
			}
			if used := c.Used(); used != m.used() {
				t.Logf("Used = %d, model %d", used, m.used())
				return false
			}
			if b > 0 && c.Used() > b {
				t.Logf("Used %d exceeds budget %d", c.Used(), b)
				return false
			}
			if c.Len() != len(m.entries) {
				t.Logf("Len = %d, model %d", c.Len(), len(m.entries))
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestByteBudgetEdges pins the documented edge rules directly.
func TestByteBudgetEdges(t *testing.T) {
	c := NewBytes[string, int](10)
	c.PutCost("too-big", 1, 11) // over budget alone: not cached
	if _, ok := c.Get("too-big"); ok {
		t.Error("entry costing more than the whole budget was cached")
	}
	c.PutCost("free", 2, 0) // clamped to cost 1
	if c.Used() != 1 {
		t.Errorf("zero-cost entry used %d, want clamp to 1", c.Used())
	}
	c.PutCost("a", 1, 6)
	c.PutCost("b", 2, 3) // 1+6+3 = 10: exactly at budget
	if c.Used() != 10 || c.Len() != 3 {
		t.Fatalf("used %d len %d, want 10/3", c.Used(), c.Len())
	}
	c.PutCost("c", 3, 5) // evicts from the back until 5 fits
	if c.Used() > 10 {
		t.Errorf("used %d exceeds budget after eviction", c.Used())
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("newly inserted entry was not resident")
	}
	ev, cost := c.EvictStats()
	if ev == 0 || cost == 0 {
		t.Errorf("EvictStats = %d/%d after forced eviction", ev, cost)
	}
	// Refreshing an entry to a larger cost re-budgets it.
	c.Purge()
	c.PutCost("x", 1, 4)
	c.PutCost("x", 1, 9)
	if c.Used() != 9 || c.Len() != 1 {
		t.Errorf("refresh to larger cost: used %d len %d, want 9/1", c.Used(), c.Len())
	}
}

// TestContentionAccounting hammers one byte-budget cache from 16
// goroutines with unique keys and checks that every counter adds up
// exactly afterwards: hits+misses equals the number of Gets, resident
// plus evicted cost equals everything inserted, and the budget held
// throughout. Run with -race this doubles as the block-cache
// thread-safety proof.
func TestContentionAccounting(t *testing.T) {
	const (
		workers = 16
		perG    = 400
		budget  = 1 << 12
	)
	c := NewBytes[int, int](budget)
	var hookEvicted, hookEvictions atomic.Int64
	c.OnEvict(func(_ int, _ int, cost int64) {
		hookEvicted.Add(cost)
		hookEvictions.Add(1)
	})

	var inserted atomic.Int64
	var gets atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := g*perG + i // unique across all goroutines: no refreshes
				cost := int64(1 + (key*37)%128)
				c.PutCost(key, key, cost)
				inserted.Add(cost)
				// Read back a recent window; each Get is a hit or a miss,
				// never a third thing.
				c.Get(key)
				c.Get(key - workers)
				gets.Add(2)
				if used := c.Used(); used > budget {
					t.Errorf("Used %d exceeds budget %d mid-run", used, budget)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	hits, misses := c.Stats()
	if total := hits + misses; total != uint64(gets.Load()) {
		t.Errorf("hits %d + misses %d = %d, want %d gets", hits, misses, total, gets.Load())
	}
	evictions, evictedCost := c.EvictStats()
	if evictions != uint64(hookEvictions.Load()) || evictedCost != uint64(hookEvicted.Load()) {
		t.Errorf("EvictStats %d/%d disagrees with OnEvict hook %d/%d",
			evictions, evictedCost, hookEvictions.Load(), hookEvicted.Load())
	}
	// Unique keys mean no refresh adjustments: whatever went in is
	// either still resident or was evicted.
	if got := c.Used() + int64(evictedCost); got != inserted.Load() {
		t.Errorf("resident %d + evicted %d = %d, want inserted %d",
			c.Used(), evictedCost, got, inserted.Load())
	}
	if c.Used() > budget {
		t.Errorf("final Used %d exceeds budget %d", c.Used(), budget)
	}
}
