package playback

import (
	"dejaview/internal/simclock"
)

// Substream bounds (§4.4): when a query is satisfied over a contiguous
// period, the result is a substream — all PVR functionality available,
// but restricted to that portion of the record. A bounded player clamps
// every time-shifting operation into [start, end).

// SetBounds restricts the player to the half-open window [start, end).
// A zero end removes the upper bound.
func (p *Player) SetBounds(start, end simclock.Time) {
	p.boundStart = start
	p.boundEnd = end
}

// Bounds reports the current restriction (end == 0 means unbounded).
func (p *Player) Bounds() (start, end simclock.Time) {
	return p.boundStart, p.boundEnd
}

// clamp squeezes t into the player's bounds.
func (p *Player) clamp(t simclock.Time) simclock.Time {
	if t < p.boundStart {
		t = p.boundStart
	}
	if p.boundEnd > 0 && t >= p.boundEnd {
		t = p.boundEnd - 1
	}
	return t
}
