package playback

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dejaview/internal/display"
	"dejaview/internal/lru"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
)

// buildRecord creates a record with a keyframe at t=0 and one solid fill
// per second for n seconds, each painting column i with color i+1.
func buildRecord(t *testing.T, n int) *record.Store {
	t.Helper()
	s := record.NewStore(32, 32)
	s.AppendScreenshot(0, display.NewFramebuffer(32, 32))
	for i := 0; i < n; i++ {
		c := display.SolidFill(simclock.Time(i+1)*simclock.Second,
			display.NewRect(i%32, 0, 1, 32), display.Pixel(i+1))
		if _, err := s.AppendCommand(&c); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// buildKeyframedRecord interleaves keyframes every kfEvery commands.
func buildKeyframedRecord(t *testing.T, n, kfEvery int) *record.Store {
	t.Helper()
	s := record.NewStore(32, 32)
	fb := display.NewFramebuffer(32, 32)
	s.AppendScreenshot(0, fb)
	for i := 0; i < n; i++ {
		c := display.SolidFill(simclock.Time(i+1)*simclock.Second,
			display.NewRect(i%32, 0, 1, 32), display.Pixel(i+1))
		if err := fb.Apply(&c); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AppendCommand(&c); err != nil {
			t.Fatal(err)
		}
		if (i+1)%kfEvery == 0 {
			s.AppendScreenshot(simclock.Time(i+1)*simclock.Second, fb)
		}
	}
	return s
}

func TestSeekToExactState(t *testing.T) {
	s := buildRecord(t, 10)
	p := New(s, 4)
	// Seek to t=5.5s: commands at 1..5s applied.
	if err := p.SeekTo(5*simclock.Second + 500*simclock.Millisecond); err != nil {
		t.Fatal(err)
	}
	scr := p.Screen()
	for i := 0; i < 5; i++ {
		if got := scr.At(i, 0); got != display.Pixel(i+1) {
			t.Errorf("column %d = %v, want %v", i, got, i+1)
		}
	}
	if got := scr.At(5, 0); got != 0 {
		t.Errorf("column 5 = %v, want untouched", got)
	}
}

func TestSeekBeforeFirstKeyframe(t *testing.T) {
	s := record.NewStore(8, 8)
	fb := display.NewFramebuffer(8, 8)
	c := display.SolidFill(0, display.NewRect(0, 0, 8, 8), 3)
	if err := fb.Apply(&c); err != nil {
		t.Fatal(err)
	}
	s.AppendScreenshot(10*simclock.Second, fb)
	p := New(s, 4)
	if err := p.SeekTo(simclock.Second); err != nil {
		t.Fatal(err)
	}
	if p.Screen().At(0, 0) != 3 {
		t.Error("seek before first keyframe should show first keyframe")
	}
	if p.Position() != 10*simclock.Second {
		t.Errorf("position = %v, want clamped to 10s", p.Position())
	}
}

func TestSeekEmptyRecord(t *testing.T) {
	s := record.NewStore(8, 8)
	p := New(s, 4)
	if err := p.SeekTo(0); err != ErrEmptyRecord {
		t.Errorf("err = %v, want ErrEmptyRecord", err)
	}
}

func TestSeekUsesNearestKeyframe(t *testing.T) {
	s := buildKeyframedRecord(t, 20, 5)
	p := New(s, 8)
	if err := p.SeekTo(17 * simclock.Second); err != nil {
		t.Fatal(err)
	}
	// Nearest keyframe is at 15s; only commands 16,17 replayed.
	if got := p.Stats().CommandsApplied; got > 2 {
		t.Errorf("CommandsApplied = %d, want <= 2 with keyframe at 15s", got)
	}
}

func TestSeekPrunesOverwritten(t *testing.T) {
	s := record.NewStore(16, 16)
	s.AppendScreenshot(0, display.NewFramebuffer(16, 16))
	// 10 successive full-screen fills; only the last should be applied.
	for i := 0; i < 10; i++ {
		c := display.SolidFill(simclock.Time(i+1)*simclock.Second,
			display.NewRect(0, 0, 16, 16), display.Pixel(i+1))
		if _, err := s.AppendCommand(&c); err != nil {
			t.Fatal(err)
		}
	}
	p := New(s, 4)
	if err := p.SeekTo(20 * simclock.Second); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.CommandsApplied != 1 {
		t.Errorf("CommandsApplied = %d, want 1", st.CommandsApplied)
	}
	if st.CommandsPruned != 9 {
		t.Errorf("CommandsPruned = %d, want 9", st.CommandsPruned)
	}
	if p.Screen().At(0, 0) != 10 {
		t.Errorf("final color %v, want 10", p.Screen().At(0, 0))
	}
}

func TestPlayMatchesSeek(t *testing.T) {
	s := buildKeyframedRecord(t, 30, 7)
	seeker := New(s, 8)
	if err := seeker.SeekTo(30 * simclock.Second); err != nil {
		t.Fatal(err)
	}
	player := New(s, 8)
	if err := player.SeekTo(0); err != nil {
		t.Fatal(err)
	}
	if _, err := player.Play(30*simclock.Second, 1, nil); err != nil {
		t.Fatal(err)
	}
	if !player.Screen().Equal(seeker.Screen()) {
		t.Error("Play and SeekTo disagree on final screen")
	}
}

func TestPlayPacing(t *testing.T) {
	s := buildRecord(t, 10)
	p := New(s, 4)
	if err := p.SeekTo(0); err != nil {
		t.Fatal(err)
	}
	var slept simclock.Time
	sleep := func(d simclock.Time) { slept += d }
	n, err := p.Play(10*simclock.Second, 1, sleep)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("applied %d commands, want 10", n)
	}
	// Commands at 1..10s, position started at 0: total waits = 10s.
	if slept != 10*simclock.Second {
		t.Errorf("slept %v, want 10s", slept)
	}
}

func TestPlayDoubleRateHalvesSleep(t *testing.T) {
	s := buildRecord(t, 10)
	p := New(s, 4)
	if err := p.SeekTo(0); err != nil {
		t.Fatal(err)
	}
	var slept simclock.Time
	if _, err := p.Play(10*simclock.Second, 2, func(d simclock.Time) { slept += d }); err != nil {
		t.Fatal(err)
	}
	if slept != 5*simclock.Second {
		t.Errorf("slept %v at 2x, want 5s", slept)
	}
}

func TestPlayErrors(t *testing.T) {
	s := buildRecord(t, 3)
	p := New(s, 4)
	if err := p.SeekTo(2 * simclock.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Play(simclock.Second, 1, nil); err == nil {
		t.Error("Play backwards should error")
	}
	if _, err := p.Play(3*simclock.Second, 0, nil); err == nil {
		t.Error("Play with zero rate should error")
	}
}

func TestFastForwardTraversesKeyframes(t *testing.T) {
	s := buildKeyframedRecord(t, 30, 5) // keyframes at 0,5,10,...,30
	p := New(s, 16)
	if err := p.SeekTo(0); err != nil {
		t.Fatal(err)
	}
	shown, err := p.FastForward(23 * simclock.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Keyframes at 5,10,15,20 are in (0, 23].
	if shown != 4 {
		t.Errorf("traversed %d keyframes, want 4", shown)
	}
	// Final state matches a direct seek.
	q := New(s, 4)
	if err := q.SeekTo(23 * simclock.Second); err != nil {
		t.Fatal(err)
	}
	if !p.Screen().Equal(q.Screen()) {
		t.Error("fast-forward final state differs from seek")
	}
}

func TestRewindTraversesKeyframesBackward(t *testing.T) {
	s := buildKeyframedRecord(t, 30, 5)
	p := New(s, 16)
	if err := p.SeekTo(28 * simclock.Second); err != nil {
		t.Fatal(err)
	}
	shown, err := p.Rewind(7 * simclock.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Keyframes at 25,20,15,10 lie in [7, 28).
	if shown != 4 {
		t.Errorf("traversed %d keyframes, want 4", shown)
	}
	q := New(s, 4)
	if err := q.SeekTo(7 * simclock.Second); err != nil {
		t.Fatal(err)
	}
	if !p.Screen().Equal(q.Screen()) {
		t.Error("rewind final state differs from seek")
	}
}

func TestKeyframeCache(t *testing.T) {
	s := buildKeyframedRecord(t, 10, 2)
	p := New(s, 8)
	for i := 0; i < 5; i++ {
		if err := p.SeekTo(9 * simclock.Second); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.KeyframesLoaded != 1 {
		t.Errorf("KeyframesLoaded = %d, want 1 (rest cached)", st.KeyframesLoaded)
	}
	if st.KeyframeCacheHits != 4 {
		t.Errorf("KeyframeCacheHits = %d, want 4", st.KeyframeCacheHits)
	}
}

func TestRenderAtOffscreen(t *testing.T) {
	s := buildRecord(t, 10)
	p := New(s, 4)
	if err := p.SeekTo(3 * simclock.Second); err != nil {
		t.Fatal(err)
	}
	posBefore := p.Position()

	cache := lru.New[int64, *display.Framebuffer](4)
	fb, err := RenderAt(s, 7*simclock.Second, cache)
	if err != nil {
		t.Fatal(err)
	}
	if fb.At(6, 0) != 7 {
		t.Errorf("rendered pixel = %v, want 7", fb.At(6, 0))
	}
	if p.Position() != posBefore {
		t.Error("RenderAt disturbed an existing player")
	}
}

// Property: for any random command record and any seek time, SeekTo
// produces the same screen as naively replaying every command from the
// beginning — pruning and keyframe shortcuts are pure optimizations.
func TestSeekEquivalentToNaiveReplay(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const w, h = 24, 24
		s := record.NewStore(w, h)
		fb := display.NewFramebuffer(w, h)
		s.AppendScreenshot(0, fb)
		var cmds []display.Command
		for i := 0; i < 50; i++ {
			c := randomCommand(rng, w, h, simclock.Time(i+1)*simclock.Second)
			cmds = append(cmds, c)
			if err := fb.Apply(&c); err != nil {
				return false
			}
			if _, err := s.AppendCommand(&c); err != nil {
				return false
			}
			if rng.Intn(10) == 0 {
				s.AppendScreenshot(simclock.Time(i+1)*simclock.Second, fb)
			}
		}
		target := simclock.Time(rng.Intn(55)) * simclock.Second
		p := New(s, 4)
		if err := p.SeekTo(target); err != nil {
			return false
		}
		naive := display.NewFramebuffer(w, h)
		for i := range cmds {
			if cmds[i].Time > target {
				break
			}
			if err := naive.Apply(&cmds[i]); err != nil {
				return false
			}
		}
		return p.Screen().Equal(naive)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomCommand(rng *rand.Rand, w, h int, t simclock.Time) display.Command {
	dst := display.NewRect(rng.Intn(w-2), rng.Intn(h-2), 1+rng.Intn(w/2), 1+rng.Intn(h/2))
	switch rng.Intn(4) {
	case 0:
		pix := make([]display.Pixel, dst.Area())
		for i := range pix {
			pix[i] = display.Pixel(rng.Uint32())
		}
		return display.Raw(t, dst, pix)
	case 1:
		return display.Copy(t, dst, display.Point{X: rng.Intn(w / 2), Y: rng.Intn(h / 2)})
	case 2:
		return display.SolidFill(t, dst, display.Pixel(rng.Uint32()))
	default:
		tile := []display.Pixel{display.Pixel(rng.Uint32()), display.Pixel(rng.Uint32())}
		return display.PatternFill(t, dst, tile, 2, 1)
	}
}
