// Package playback implements DejaView's visual playback and browsing
// engine (§4.3): skipping to any time in the display record, playing
// forward at the original rate or a scaled rate, fast-forwarding and
// rewinding through keyframes, and rendering offscreen screenshots for
// search results.
package playback

import (
	"errors"
	"fmt"
	"sort"

	"dejaview/internal/display"
	"dejaview/internal/lru"
	"dejaview/internal/obs"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
)

// ErrEmptyRecord reports playback over a record with no keyframes.
var ErrEmptyRecord = errors.New("playback: record has no screenshots")

// Registry instruments for the keyframe cache across all players (browse,
// search screenshots, playback).
var (
	obsKeyHits   = obs.Default.Counter("playback.keyframe_cache_hits")
	obsKeyMisses = obs.Default.Counter("playback.keyframe_cache_misses")
)

// Sleeper paces playback: the player calls it with the (rate-scaled) time
// to wait before the next command. Interactive viewers pass a real
// sleeper; tests and benchmarks pass an accumulator. A nil Sleeper plays
// at the fastest possible rate ("ignores the command times and processes
// them as quickly as it can").
type Sleeper func(d simclock.Time)

// Stats aggregates playback accounting.
type Stats struct {
	// Seeks counts SeekTo operations.
	Seeks uint64
	// CommandsApplied counts commands decoded and applied.
	CommandsApplied uint64
	// CommandsPruned counts commands discarded as overwritten during
	// seek ("builds a list of commands that are pertinent ... by
	// discarding those that are overwritten by newer ones").
	CommandsPruned uint64
	// KeyframesLoaded counts screenshot decodes (cache misses).
	KeyframesLoaded uint64
	// KeyframeCacheHits counts screenshot cache hits.
	KeyframeCacheHits uint64
	// SleptVirtual is the total rate-scaled wait handed to the Sleeper.
	SleptVirtual simclock.Time
}

// Player replays a display record. It functions like the DejaView viewer
// in processing and displaying command output, plus the accounting of
// time (§4.3).
//
// Player is not safe for concurrent use.
type Player struct {
	store *record.Store
	fb    *display.Framebuffer
	// pos is the current playback position in time.
	pos simclock.Time
	// cmdOff is the offset of the next command to play.
	cmdOff int64
	cache  *lru.Cache[int64, *display.Framebuffer]
	stats  Stats
	// boundStart/boundEnd restrict PVR operations to a substream
	// (§4.4); boundEnd == 0 means unbounded.
	boundStart, boundEnd simclock.Time
}

// New creates a player positioned before the start of the record.
// cacheSize bounds the decoded-keyframe LRU cache (tunable, §4.4).
func New(store *record.Store, cacheSize int) *Player {
	return &Player{
		store: store,
		fb:    display.NewFramebuffer(store.Width, store.Height),
		cache: lru.New[int64, *display.Framebuffer](cacheSize),
	}
}

// Screen returns a snapshot of the current playback screen.
func (p *Player) Screen() *display.Framebuffer { return p.fb.Snapshot() }

// Position reports the current playback time.
func (p *Player) Position() simclock.Time { return p.pos }

// Stats returns a copy of the playback counters.
func (p *Player) Stats() Stats { return p.stats }

// findEntry binary-searches the timeline index for the entry with the
// maximum time less than or equal to t, per §4.3. It returns the entry
// index, or -1 when t precedes the first keyframe.
func (p *Player) findEntry(t simclock.Time) int {
	tl := p.store.Timeline()
	// sort.Search finds the first entry with Time > t; the one before it
	// is the wanted entry.
	i := sort.Search(len(tl), func(i int) bool { return tl[i].Time > t })
	return i - 1
}

// loadKeyframe fetches the screenshot for timeline entry e through the
// LRU cache.
func (p *Player) loadKeyframe(e record.TimelineEntry) (*display.Framebuffer, error) {
	if fb, ok := p.cache.Get(e.ScreenOff); ok {
		p.stats.KeyframeCacheHits++
		obsKeyHits.Inc()
		return fb, nil
	}
	fb, err := p.store.ScreenshotAt(e)
	if err != nil {
		return nil, err
	}
	p.stats.KeyframesLoaded++
	obsKeyMisses.Inc()
	p.cache.Put(e.ScreenOff, fb)
	return fb, nil
}

// SeekTo positions the playback screen at the state as of time t: it
// restores the closest prior screenshot and replays the (pruned) command
// list up to the first command with time greater than t.
func (p *Player) SeekTo(t simclock.Time) error {
	tl := p.store.Timeline()
	if len(tl) == 0 {
		return ErrEmptyRecord
	}
	t = p.clamp(t)
	p.stats.Seeks++
	i := p.findEntry(t)
	if i < 0 {
		// Before the first keyframe: show the first keyframe's state at
		// its own time (nothing earlier was recorded).
		i = 0
	}
	e := tl[i]
	key, err := p.loadKeyframe(e)
	if err != nil {
		return err
	}
	if err := p.fb.CopyFrom(key); err != nil {
		return err
	}
	// Collect commands in (e.Time, t], prune overwritten ones, then
	// apply in chronological order.
	cmds, nextOff, err := p.collectUntil(e.CmdOff, t)
	if err != nil {
		return err
	}
	pruned := pruneOverwritten(cmds)
	p.stats.CommandsPruned += uint64(len(cmds) - len(pruned))
	for i := range pruned {
		if err := p.fb.Apply(&pruned[i]); err != nil {
			return err
		}
		p.stats.CommandsApplied++
	}
	p.cmdOff = nextOff
	p.pos = t
	if t < e.Time {
		p.pos = e.Time
	}
	return nil
}

// collectUntil decodes commands starting at off whose time is <= t,
// returning them plus the offset of the first command beyond t.
func (p *Player) collectUntil(off int64, t simclock.Time) ([]display.Command, int64, error) {
	var cmds []display.Command
	for off < p.store.EndOfCommands() {
		c, next, err := p.store.DecodeCommandAt(off)
		if err != nil {
			return nil, 0, fmt.Errorf("playback: decode at %d: %w", off, err)
		}
		if c.Time > t {
			return cmds, off, nil
		}
		cmds = append(cmds, c)
		off = next
	}
	return cmds, off, nil
}

// pruneOverwritten removes commands whose entire output is overwritten by
// a later command in the list, preserving chronological order, and being
// careful that copy sources pin their inputs — the same safety condition
// as the server's merge queue.
func pruneOverwritten(cmds []display.Command) []display.Command {
	if len(cmds) < 2 {
		return cmds
	}
	keep := make([]bool, len(cmds))
	for i := range keep {
		keep[i] = true
	}
	for i := 0; i < len(cmds); i++ {
		if !keep[i] {
			continue
		}
		for j := i + 1; j < len(cmds); j++ {
			if cmds[j].Covers(cmds[i].Dst) && !copySourceBetween(cmds[i+1:j+1], cmds[i].Dst) {
				keep[i] = false
				break
			}
		}
	}
	out := cmds[:0:0]
	for i, k := range keep {
		if k {
			out = append(out, cmds[i])
		}
	}
	return out
}

func copySourceBetween(cmds []display.Command, r display.Rect) bool {
	for i := range cmds {
		if cmds[i].Type == display.CmdCopy && cmds[i].SrcRect().Overlaps(r) {
			return true
		}
	}
	return false
}

// Play advances playback from the current position to time t, applying
// every command in order. rate scales pacing: 1 plays at the original
// recording speed, 2 at twice the speed, etc. sleep receives the scaled
// inter-command waits; a nil sleep plays as fast as possible. Play
// returns the number of commands applied.
func (p *Player) Play(t simclock.Time, rate float64, sleep Sleeper) (int, error) {
	if rate <= 0 {
		return 0, fmt.Errorf("playback: non-positive rate %v", rate)
	}
	t = p.clamp(t)
	if t < p.pos {
		return 0, fmt.Errorf("playback: Play target %v before current position %v", t, p.pos)
	}
	n := 0
	last := p.pos
	for p.cmdOff < p.store.EndOfCommands() {
		c, next, err := p.store.DecodeCommandAt(p.cmdOff)
		if err != nil {
			return n, err
		}
		if c.Time > t {
			break
		}
		if sleep != nil && c.Time > last {
			d := simclock.Time(float64(c.Time-last) / rate)
			sleep(d)
			p.stats.SleptVirtual += d
		}
		if err := p.fb.Apply(&c); err != nil {
			return n, err
		}
		p.stats.CommandsApplied++
		last = c.Time
		p.cmdOff = next
		n++
	}
	p.pos = t
	return n, nil
}

// FastForward moves from the current position forward to time t by
// playing each intervening keyframe in turn (giving the user visual
// feedback), then seeking precisely (§4.3). It returns the keyframes
// traversed.
func (p *Player) FastForward(t simclock.Time) (int, error) {
	tl := p.store.Timeline()
	if len(tl) == 0 {
		return 0, ErrEmptyRecord
	}
	t = p.clamp(t)
	shown := 0
	for _, e := range tl {
		if e.Time <= p.pos {
			continue
		}
		if e.Time > t {
			break
		}
		key, err := p.loadKeyframe(e)
		if err != nil {
			return shown, err
		}
		if err := p.fb.CopyFrom(key); err != nil {
			return shown, err
		}
		shown++
	}
	return shown, p.SeekTo(t)
}

// Rewind moves from the current position backward to time t, traversing
// keyframes in reverse, then seeking precisely.
func (p *Player) Rewind(t simclock.Time) (int, error) {
	tl := p.store.Timeline()
	if len(tl) == 0 {
		return 0, ErrEmptyRecord
	}
	t = p.clamp(t)
	shown := 0
	for i := len(tl) - 1; i >= 0; i-- {
		e := tl[i]
		if e.Time >= p.pos {
			continue
		}
		if e.Time < t {
			break
		}
		key, err := p.loadKeyframe(e)
		if err != nil {
			return shown, err
		}
		if err := p.fb.CopyFrom(key); err != nil {
			return shown, err
		}
		shown++
	}
	return shown, p.SeekTo(t)
}

// RenderAt renders the screen as of time t completely offscreen and
// returns it, without disturbing the player's current position. Search
// uses this to generate result screenshots (§4.4).
func RenderAt(store *record.Store, t simclock.Time, cache *lru.Cache[int64, *display.Framebuffer]) (*display.Framebuffer, error) {
	p := New(store, 0)
	if cache != nil {
		p.cache = cache
	}
	if err := p.SeekTo(t); err != nil {
		return nil, err
	}
	return p.fb, nil
}
