package playback

import (
	"testing"

	"dejaview/internal/display"
	"dejaview/internal/lru"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
)

func TestBrowserThumbs(t *testing.T) {
	s := buildKeyframedRecord(t, 12, 3) // keyframes at 0, 3, 6, 9, 12s
	end := simclock.Time(14) * simclock.Second
	b := NewBrowser(s, end, 8, 8, nil)
	if b.Len() != 5 {
		t.Fatalf("Len = %d, want 5 keyframes", b.Len())
	}

	thumbs, err := b.Thumbs(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(thumbs) != 5 {
		t.Fatalf("stride-1 strip has %d thumbs, want 5", len(thumbs))
	}
	for i, th := range thumbs {
		if th.Index != i {
			t.Errorf("thumb %d carries index %d", i, th.Index)
		}
		if w, h := th.Image.Size(); w != 8 || h != 8 {
			t.Errorf("thumb %d is %dx%d, want 8x8", i, w, h)
		}
		want := end
		if i+1 < len(thumbs) {
			want = thumbs[i+1].Time
		}
		if th.Until != want {
			t.Errorf("thumb %d range ends at %v, want %v", i, th.Until, want)
		}
		if th.Until < th.Time {
			t.Errorf("thumb %d has negative range [%v, %v)", i, th.Time, th.Until)
		}
	}

	// A stride skips intermediates but always includes the last keyframe.
	sparse, err := b.Thumbs(3)
	if err != nil {
		t.Fatal(err)
	}
	var idxs []int
	for _, th := range sparse {
		idxs = append(idxs, th.Index)
	}
	if len(idxs) != 3 || idxs[0] != 0 || idxs[1] != 3 || idxs[2] != 4 {
		t.Fatalf("stride-3 strip indexes = %v, want [0 3 4]", idxs)
	}
}

// TestBrowserResolveMatchesSeek: opening a thumbnail shows exactly what
// a precise seek to its keyframe time shows.
func TestBrowserResolveMatchesSeek(t *testing.T) {
	s := buildKeyframedRecord(t, 12, 3)
	end := simclock.Time(12) * simclock.Second
	b := NewBrowser(s, end, 8, 8, nil)
	for i := 0; i < b.Len(); i++ {
		got, err := b.Resolve(i)
		if err != nil {
			t.Fatal(err)
		}
		p := New(s, 0)
		if err := p.SeekTo(s.Timeline()[i].Time); err != nil {
			t.Fatal(err)
		}
		if got.Hash() != p.Screen().Hash() {
			t.Errorf("thumb %d: Resolve differs from SeekTo render", i)
		}
	}
	if _, err := b.Resolve(b.Len()); err == nil {
		t.Error("Resolve past the strip did not error")
	}
	if _, err := b.Thumb(-1); err == nil {
		t.Error("Thumb(-1) did not error")
	}
}

// TestBrowserSharedCache: a strip rendered twice over a shared keyframe
// cache decodes each screenshot once.
func TestBrowserSharedCache(t *testing.T) {
	s := buildKeyframedRecord(t, 12, 3)
	cache := lru.New[int64, *display.Framebuffer](16)
	b := NewBrowser(s, 12*simclock.Second, 8, 8, cache)
	if _, err := b.Thumbs(1); err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if misses != 5 || hits != 0 {
		t.Fatalf("cold strip: %d misses %d hits, want 5 misses", misses, hits)
	}
	if _, err := b.Thumbs(1); err != nil {
		t.Fatal(err)
	}
	hits, misses = cache.Stats()
	if misses != 5 || hits != 5 {
		t.Fatalf("warm strip: %d misses %d hits, want 5 misses 5 hits", misses, hits)
	}
}

func TestBrowserEmptyRecord(t *testing.T) {
	s := record.NewStore(8, 8)
	b := NewBrowser(s, 0, 4, 4, nil)
	if _, err := b.Thumbs(1); err != ErrEmptyRecord {
		t.Fatalf("Thumbs over empty record: %v, want ErrEmptyRecord", err)
	}
}
