package playback

import (
	"testing"

	"dejaview/internal/simclock"
)

func TestBoundsClampSeek(t *testing.T) {
	s := buildKeyframedRecord(t, 30, 5)
	p := New(s, 8)
	p.SetBounds(10*simclock.Second, 20*simclock.Second)

	if err := p.SeekTo(2 * simclock.Second); err != nil {
		t.Fatal(err)
	}
	if p.Position() < 10*simclock.Second {
		t.Errorf("seek below bound landed at %v", p.Position())
	}
	if err := p.SeekTo(25 * simclock.Second); err != nil {
		t.Fatal(err)
	}
	if p.Position() >= 20*simclock.Second {
		t.Errorf("seek above bound landed at %v", p.Position())
	}
	// The bounded view still matches an unbounded seek to the same time.
	q := New(s, 8)
	if err := q.SeekTo(p.Position()); err != nil {
		t.Fatal(err)
	}
	if !p.Screen().Equal(q.Screen()) {
		t.Error("bounded seek renders differently")
	}
}

func TestBoundsClampPlayAndFF(t *testing.T) {
	s := buildKeyframedRecord(t, 30, 5)
	p := New(s, 8)
	p.SetBounds(5*simclock.Second, 15*simclock.Second)
	if err := p.SeekTo(0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Play(30*simclock.Second, 1, nil); err != nil {
		t.Fatal(err)
	}
	if p.Position() >= 15*simclock.Second {
		t.Errorf("play escaped the substream: %v", p.Position())
	}
	if _, err := p.FastForward(29 * simclock.Second); err != nil {
		t.Fatal(err)
	}
	if p.Position() >= 15*simclock.Second {
		t.Errorf("fast-forward escaped the substream: %v", p.Position())
	}
	if _, err := p.Rewind(0); err != nil {
		t.Fatal(err)
	}
	if p.Position() < 5*simclock.Second {
		t.Errorf("rewind escaped the substream: %v", p.Position())
	}
}

func TestBoundsAccessors(t *testing.T) {
	s := buildRecord(t, 5)
	p := New(s, 4)
	a, b := p.Bounds()
	if a != 0 || b != 0 {
		t.Error("fresh player should be unbounded")
	}
	p.SetBounds(simclock.Second, 3*simclock.Second)
	a, b = p.Bounds()
	if a != simclock.Second || b != 3*simclock.Second {
		t.Errorf("Bounds = %v, %v", a, b)
	}
}
