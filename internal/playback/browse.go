package playback

// Visual-history time-machine browsing (ScreenTrack, arXiv 2001.10898;
// DejaView §4.3–4.4): the record's timeline of keyframes doubles as a
// thumbnail strip. A Browser walks that strip at a chosen stride,
// rendering each keyframe scaled down to thumbnail size, and resolves a
// chosen thumbnail back to the full-resolution screen. Full keyframes
// decode through the same LRU the other browse paths share, so a strip
// over a cold archive demand-pages each screenshot block at most once.

import (
	"fmt"

	"dejaview/internal/display"
	"dejaview/internal/lru"
	"dejaview/internal/obs"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
)

var obsThumbsRendered = obs.Default.Counter("playback.thumbnails_rendered")

// Thumb is one entry of the thumbnail timeline: a scaled keyframe plus
// the display range it stands for — [Time, Until) is the span of the
// record this thumbnail represents.
type Thumb struct {
	// Index is the timeline entry index inside the record store; pass it
	// to Resolve (or core's ResolveThumb) to open this moment fully.
	Index int
	// Time is the keyframe's capture time, Until the next keyframe's
	// (the record end for the last thumbnail).
	Time, Until simclock.Time
	// Image is the keyframe scaled to the browser's thumbnail size.
	Image *display.Framebuffer
}

// Browser renders a display record as a visual-history timeline. It is
// safe for concurrent use if its cache is (the lru cache is); each call
// renders independently.
type Browser struct {
	store          *record.Store
	end            simclock.Time
	thumbW, thumbH int
	cache          *lru.Cache[int64, *display.Framebuffer]
}

// NewBrowser creates a browser over a record that ends at end. Thumbnails
// are rendered at thumbW×thumbH; cache, when non-nil, is the shared
// decoded-keyframe LRU (the same one search and Browse use), letting a
// strip render warm when those paths already touched the keyframes.
func NewBrowser(store *record.Store, end simclock.Time, thumbW, thumbH int, cache *lru.Cache[int64, *display.Framebuffer]) *Browser {
	if cache == nil {
		cache = lru.New[int64, *display.Framebuffer](0)
	}
	return &Browser{store: store, end: end, thumbW: thumbW, thumbH: thumbH, cache: cache}
}

// Len reports the number of keyframes (potential thumbnails).
func (b *Browser) Len() int { return len(b.store.Timeline()) }

// until reports the display range end for timeline entry i.
func (b *Browser) until(tl []record.TimelineEntry, i int) simclock.Time {
	if i+1 < len(tl) {
		return tl[i+1].Time
	}
	if b.end > tl[i].Time {
		return b.end
	}
	return tl[i].Time
}

// keyframe loads entry i's full screenshot through the shared cache.
func (b *Browser) keyframe(tl []record.TimelineEntry, i int) (*display.Framebuffer, error) {
	e := tl[i]
	if fb, ok := b.cache.Get(e.ScreenOff); ok {
		obsKeyHits.Inc()
		return fb, nil
	}
	fb, err := b.store.ScreenshotAt(e)
	if err != nil {
		return nil, err
	}
	obsKeyMisses.Inc()
	b.cache.Put(e.ScreenOff, fb)
	return fb, nil
}

// Thumb renders the thumbnail for timeline entry i.
func (b *Browser) Thumb(i int) (Thumb, error) {
	tl := b.store.Timeline()
	if i < 0 || i >= len(tl) {
		return Thumb{}, fmt.Errorf("playback: thumbnail %d of %d", i, len(tl))
	}
	fb, err := b.keyframe(tl, i)
	if err != nil {
		return Thumb{}, err
	}
	// ScaleFramebuffer snapshots on identity, so the thumbnail never
	// aliases the cached keyframe.
	img := display.NewScaler(b.store.Width, b.store.Height, b.thumbW, b.thumbH).ScaleFramebuffer(fb)
	obsThumbsRendered.Inc()
	return Thumb{Index: i, Time: tl[i].Time, Until: b.until(tl, i), Image: img}, nil
}

// Thumbs renders every stride-th keyframe (stride <= 1 renders all),
// always including the final keyframe so the strip reaches the present.
func (b *Browser) Thumbs(stride int) ([]Thumb, error) {
	tl := b.store.Timeline()
	if len(tl) == 0 {
		return nil, ErrEmptyRecord
	}
	if stride < 1 {
		stride = 1
	}
	var out []Thumb
	for i := 0; i < len(tl); i += stride {
		th, err := b.Thumb(i)
		if err != nil {
			return nil, err
		}
		out = append(out, th)
	}
	if last := len(tl) - 1; last%stride != 0 {
		th, err := b.Thumb(last)
		if err != nil {
			return nil, err
		}
		out = append(out, th)
	}
	return out, nil
}

// Resolve renders timeline entry i's moment at full resolution — the
// "open this thumbnail" operation. The screen is rendered at the
// keyframe's exact capture time, so it is byte-identical to what the
// recorder saw.
func (b *Browser) Resolve(i int) (*display.Framebuffer, error) {
	tl := b.store.Timeline()
	if i < 0 || i >= len(tl) {
		return nil, fmt.Errorf("playback: thumbnail %d of %d", i, len(tl))
	}
	return RenderAt(b.store, tl[i].Time, b.cache)
}
