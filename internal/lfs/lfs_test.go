package lfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCreateWriteRead(t *testing.T) {
	fs := New()
	if err := fs.Create("/a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("ReadFile = %q", got)
	}
}

func TestCreateExisting(t *testing.T) {
	fs := New()
	if err := fs.Create("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/a"); !errors.Is(err, ErrExist) {
		t.Errorf("err = %v, want ErrExist", err)
	}
}

func TestWriteImplicitCreate(t *testing.T) {
	fs := New()
	if err := fs.WriteAt("/new.txt", 0, []byte("data")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/new.txt")
	if err != nil || string(got) != "data" {
		t.Errorf("got %q, %v", got, err)
	}
}

func TestWriteAtOffset(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/f", []byte("aaaaaaaaaa")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt("/f", 3, []byte("BBB")); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/f")
	if string(got) != "aaaBBBaaaa" {
		t.Errorf("got %q", got)
	}
	// Extend past EOF with a hole.
	if err := fs.WriteAt("/f", 15, []byte("Z")); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.ReadFile("/f")
	if len(got) != 16 || got[15] != 'Z' || got[12] != 0 {
		t.Errorf("extended = %v (len %d)", got, len(got))
	}
}

func TestWriteCrossBlockBoundary(t *testing.T) {
	fs := New()
	big := make([]byte, 3*BlockSize)
	for i := range big {
		big[i] = byte(i % 251)
	}
	if err := fs.WriteFile("/big", big); err != nil {
		t.Fatal(err)
	}
	// Overwrite a span crossing blocks 1 and 2.
	patch := bytes.Repeat([]byte{0xEE}, 100)
	off := int64(BlockSize) - 50
	if err := fs.WriteAt("/big", off, patch); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/big")
	want := append([]byte(nil), big...)
	copy(want[off:], patch)
	if !bytes.Equal(got, want) {
		t.Error("cross-block write corrupted contents")
	}
}

func TestMkdirAndReadDir(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/home/user/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/home/user/docs/a.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/home/user/docs/b.txt", []byte("y")); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("/home/user/docs")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"a.txt", "b.txt"}) {
		t.Errorf("ReadDir = %v", names)
	}
	if _, err := fs.ReadDir("/home/user/docs/a.txt"); !errors.Is(err, ErrNotDir) {
		t.Errorf("ReadDir on file err = %v", err)
	}
}

func TestRemoveAndTombstone(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	preRemove := fs.CurrentEpoch()
	if err := fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/f") {
		t.Error("file still visible after remove")
	}
	// But the snapshot before the remove still sees it.
	v, err := fs.At(preRemove)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Exists("/f") {
		t.Error("snapshot lost the removed file")
	}
	if err := fs.Remove("/f"); !errors.Is(err, ErrNotExist) {
		t.Errorf("double remove err = %v", err)
	}
}

func TestRemoveNonEmptyDir(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("err = %v, want ErrNotEmpty", err)
	}
	if err := fs.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); err != nil {
		t.Errorf("removing emptied dir: %v", err)
	}
}

func TestRename(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/old", []byte("content")); err != nil {
		t.Fatal(err)
	}
	pre := fs.CurrentEpoch()
	if err := fs.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/old") {
		t.Error("old path survives rename")
	}
	got, err := fs.ReadFile("/new")
	if err != nil || string(got) != "content" {
		t.Errorf("new path = %q, %v", got, err)
	}
	v, _ := fs.At(pre)
	if !v.Exists("/old") || v.Exists("/new") {
		t.Error("pre-rename snapshot wrong")
	}
	if err := fs.Rename("/missing", "/x"); !errors.Is(err, ErrNotExist) {
		t.Errorf("rename missing err = %v", err)
	}
}

func TestLinkAndInoOf(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/f", []byte("shared")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link("/f", "/g"); err != nil {
		t.Fatal(err)
	}
	i1, _ := fs.InoOf("/f")
	i2, _ := fs.InoOf("/g")
	if i1 != i2 {
		t.Errorf("hard link inode mismatch %d vs %d", i1, i2)
	}
	if err := fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/g")
	if err != nil || string(got) != "shared" {
		t.Errorf("link read after remove: %q, %v", got, err)
	}
}

func TestLinkInoRelinkUnlinked(t *testing.T) {
	// The checkpoint engine's relink flow: file removed while "open",
	// then relinked by inode into a hidden directory.
	fs := New()
	if err := fs.WriteFile("/tmp.dat", []byte("precious")); err != nil {
		t.Fatal(err)
	}
	ino, _ := fs.InoOf("/tmp.dat")
	if err := fs.Remove("/tmp.dat"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/.dejaview"); err != nil {
		t.Fatal(err)
	}
	if err := fs.LinkIno(ino, "/.dejaview/relink-1"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/.dejaview/relink-1")
	if err != nil || string(got) != "precious" {
		t.Errorf("relinked read = %q, %v", got, err)
	}
}

func TestTruncate(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/f", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate("/f", 4); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/f")
	if string(got) != "0123" {
		t.Errorf("truncated = %q", got)
	}
	if err := fs.Truncate("/f", 8); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.ReadFile("/f")
	if len(got) != 8 || got[7] != 0 {
		t.Errorf("extended = %v", got)
	}
}

func TestEveryTransactionIsSnapshot(t *testing.T) {
	fs := New()
	var epochs []Epoch
	var wants []string
	for i := 0; i < 5; i++ {
		content := fmt.Sprintf("version-%d", i)
		if err := fs.WriteFile("/doc", []byte(content)); err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, fs.CurrentEpoch())
		wants = append(wants, content)
	}
	for i, e := range epochs {
		v, err := fs.At(e)
		if err != nil {
			t.Fatal(err)
		}
		got, err := v.ReadFile("/doc")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != wants[i] {
			t.Errorf("epoch %d: %q, want %q", e, got, wants[i])
		}
	}
}

func TestSnapshotIsolationFromFutureWrites(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/f", bytes.Repeat([]byte{1}, 2*BlockSize)); err != nil {
		t.Fatal(err)
	}
	e := fs.CurrentEpoch()
	v, _ := fs.At(e)
	// Mutate one block after the snapshot.
	if err := fs.WriteAt("/f", 10, []byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	got, _ := v.ReadFile("/f")
	if got[10] != 1 || got[11] != 1 {
		t.Error("snapshot saw post-snapshot write (COW violated)")
	}
}

func TestCheckpointCounterAssociation(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/state", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	e1 := fs.TagCheckpoint(1)
	if err := fs.WriteFile("/state", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	fs.TagCheckpoint(2)

	got, err := fs.EpochForCheckpoint(1)
	if err != nil || got != e1 {
		t.Fatalf("EpochForCheckpoint(1) = %d, %v; want %d", got, err, e1)
	}
	v, _ := fs.At(got)
	data, _ := v.ReadFile("/state")
	if string(data) != "v1" {
		t.Errorf("checkpoint 1 sees %q, want v1", data)
	}
	if _, err := fs.EpochForCheckpoint(99); !errors.Is(err, ErrNoEpoch) {
		t.Errorf("missing counter err = %v", err)
	}
}

func TestSyncAndDirtyAccounting(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/f", make([]byte, BlockSize)); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.DirtyBytes == 0 {
		t.Error("write should dirty the log")
	}
	flushed := fs.Sync()
	if flushed != st.DirtyBytes {
		t.Errorf("Sync flushed %d, want %d", flushed, st.DirtyBytes)
	}
	if fs.Stats().DirtyBytes != 0 {
		t.Error("dirty bytes survive sync")
	}
	// Pre-sync then snapshot: snapshot flush should be zero.
	if err := fs.WriteFile("/g", make([]byte, BlockSize)); err != nil {
		t.Fatal(err)
	}
	fs.Sync()
	_, rem := fs.Snapshot()
	if rem != 0 {
		t.Errorf("snapshot after sync flushed %d, want 0", rem)
	}
}

func TestLogGrowthProportionalToWrites(t *testing.T) {
	fs := New()
	big := make([]byte, 64*BlockSize)
	if err := fs.WriteFile("/big", big); err != nil {
		t.Fatal(err)
	}
	before := fs.Stats().DataBytes
	// Touch a single byte: only one block should be logged.
	if err := fs.WriteAt("/big", 5, []byte{1}); err != nil {
		t.Fatal(err)
	}
	delta := fs.Stats().DataBytes - before
	if delta != BlockSize {
		t.Errorf("single-byte write logged %d bytes, want one block (%d)", delta, BlockSize)
	}
}

func TestBadPaths(t *testing.T) {
	fs := New()
	for _, p := range []string{"", "relative", "/../escape"} {
		if err := fs.Create(p); !errors.Is(err, ErrBadPath) {
			t.Errorf("Create(%q) err = %v, want ErrBadPath", p, err)
		}
	}
	if err := fs.Create("/"); err == nil {
		t.Error("creating root should fail")
	}
	// Path normalization.
	if err := fs.WriteFile("/a//b/.././c", []byte("x")); err == nil {
		// /a//b/../../c → needs /a to exist; expect ErrNotExist not panic
		t.Log("normalized write succeeded unexpectedly")
	}
}

func TestAtFutureEpoch(t *testing.T) {
	fs := New()
	if _, err := fs.At(999); !errors.Is(err, ErrNoEpoch) {
		t.Errorf("err = %v, want ErrNoEpoch", err)
	}
}

func TestStatFields(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/f", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	st, err := fs.Stat("/d/f")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindFile || st.Size != 5 {
		t.Errorf("Stat = %+v", st)
	}
	st, err = fs.Stat("/d")
	if err != nil || st.Kind != KindDir {
		t.Errorf("dir Stat = %+v, %v", st, err)
	}
}

// Property: a model-based test — random operations applied both to the
// FS and to a plain map model must agree on current contents, and every
// snapshot taken along the way must continue to agree with the model's
// state frozen at that time.
func TestFSMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := New()
		model := map[string][]byte{}
		paths := []string{"/a", "/b", "/c", "/d"}
		type snap struct {
			view   *View
			frozen map[string][]byte
		}
		var snaps []snap
		for step := 0; step < 60; step++ {
			p := paths[rng.Intn(len(paths))]
			switch rng.Intn(4) {
			case 0, 1: // write
				data := make([]byte, rng.Intn(3*BlockSize))
				rng.Read(data)
				if err := fs.WriteFile(p, data); err != nil {
					return false
				}
				model[p] = data
			case 2: // remove
				err := fs.Remove(p)
				if _, ok := model[p]; ok {
					if err != nil {
						return false
					}
					delete(model, p)
				} else if !errors.Is(err, ErrNotExist) {
					return false
				}
			case 3: // snapshot
				v, err := fs.At(fs.CurrentEpoch())
				if err != nil {
					return false
				}
				frozen := map[string][]byte{}
				for k, val := range model {
					frozen[k] = append([]byte(nil), val...)
				}
				snaps = append(snaps, snap{view: v, frozen: frozen})
			}
		}
		// Current state agreement.
		for _, p := range paths {
			got, err := fs.ReadFile(p)
			want, ok := model[p]
			if ok {
				if err != nil || !bytes.Equal(got, want) {
					return false
				}
			} else if !errors.Is(err, ErrNotExist) {
				return false
			}
		}
		// Snapshot agreement.
		for _, s := range snaps {
			for _, p := range paths {
				got, err := s.view.ReadFile(p)
				want, ok := s.frozen[p]
				if ok {
					if err != nil || !bytes.Equal(got, want) {
						return false
					}
				} else if !errors.Is(err, ErrNotExist) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
