package lfs

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// On-disk serialization of a log-structured file system: the whole
// version history — every snapshot epoch — round-trips, so an archived
// session keeps its ability to open any past file-system view (which is
// what revive needs). Shared data blocks are written once and referenced
// by index, preserving the log's copy-on-write sharing on disk.
//
// Layout (all little-endian):
//
//	magic(8) epoch(8) nextIno(8)
//	nBlocks(4) { len(4) data }...
//	nInodes(4) inode...
//	nCheckpoints(4) { counter(8) epoch(8) }...
//	stats(5x8)
//
//	inode := ino(8) kind(1) nlink(4)
//	         nVersions(4) { epoch(8) size(8) nBlocks(4) blockRef(4)... }
//	         nEntries(4) { nameLen(2) name nVers(4) { epoch(8) ino(8) }... }
//
// blockRef 0xFFFFFFFF denotes a hole (nil block).

const fsMagic = 0x31534656414A4544 // "DEJAVFS1"

const holeRef = ^uint32(0)

// ErrCorruptFS reports a structurally invalid serialized file system.
var ErrCorruptFS = errors.New("lfs: corrupt serialized file system")

type fsWriter struct {
	w   *bufio.Writer
	err error
}

func (fw *fsWriter) u8(v uint8) { fw.write([]byte{v}) }
func (fw *fsWriter) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	fw.write(b[:])
}
func (fw *fsWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	fw.write(b[:])
}
func (fw *fsWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	fw.write(b[:])
}

func (fw *fsWriter) write(b []byte) {
	if fw.err != nil {
		return
	}
	_, fw.err = fw.w.Write(b)
}

type fsReader struct {
	r   *bufio.Reader
	err error
}

func (fr *fsReader) bytes(n int) []byte {
	if fr.err != nil {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(fr.r, b); err != nil {
		fr.err = err
		return nil
	}
	return b
}

func (fr *fsReader) u8() uint8 {
	b := fr.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (fr *fsReader) u16() uint16 {
	b := fr.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}
func (fr *fsReader) u32() uint32 {
	b := fr.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (fr *fsReader) u64() uint64 {
	b := fr.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Save serializes the file system, including its complete snapshot
// history and checkpoint-counter associations.
func (fs *FS) Save(w io.Writer) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()

	// Deduplicate blocks by identity.
	blockID := make(map[*block]uint32)
	var blocks []*block
	inos := make([]Ino, 0, len(fs.inodes))
	for ino := range fs.inodes {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	for _, ino := range inos {
		for _, v := range fs.inodes[ino].versions {
			for _, b := range v.blocks {
				if b == nil {
					continue
				}
				if _, ok := blockID[b]; !ok {
					blockID[b] = uint32(len(blocks))
					blocks = append(blocks, b)
				}
			}
		}
	}

	fw := &fsWriter{w: bufio.NewWriter(w)}
	fw.u64(fsMagic)
	fw.u64(uint64(fs.epoch))
	fw.u64(uint64(fs.nextIno))
	fw.u32(uint32(len(blocks)))
	for _, b := range blocks {
		fw.u32(uint32(len(b.data)))
		fw.write(b.data)
	}
	fw.u32(uint32(len(inos)))
	for _, ino := range inos {
		node := fs.inodes[ino]
		fw.u64(uint64(node.ino))
		fw.u8(uint8(node.kind))
		fw.u32(uint32(node.nlink))
		fw.u32(uint32(len(node.versions)))
		for _, v := range node.versions {
			fw.u64(uint64(v.epoch))
			fw.u64(uint64(v.size))
			fw.u32(uint32(len(v.blocks)))
			for _, b := range v.blocks {
				if b == nil {
					fw.u32(holeRef)
				} else {
					fw.u32(blockID[b])
				}
			}
		}
		names := make([]string, 0, len(node.entries))
		for name := range node.entries {
			names = append(names, name)
		}
		sort.Strings(names)
		fw.u32(uint32(len(names)))
		for _, name := range names {
			fw.u16(uint16(len(name)))
			fw.write([]byte(name))
			hist := node.entries[name]
			fw.u32(uint32(len(hist)))
			for _, d := range hist {
				fw.u64(uint64(d.epoch))
				fw.u64(uint64(d.ino))
			}
		}
	}
	counters := make([]uint64, 0, len(fs.checkpoints))
	for c := range fs.checkpoints {
		counters = append(counters, c)
	}
	sort.Slice(counters, func(i, j int) bool { return counters[i] < counters[j] })
	fw.u32(uint32(len(counters)))
	for _, c := range counters {
		fw.u64(c)
		fw.u64(uint64(fs.checkpoints[c]))
	}
	fw.u64(uint64(fs.stats.LogBytes))
	fw.u64(uint64(fs.stats.DataBytes))
	fw.u64(fs.stats.Transactions)
	fw.u64(uint64(fs.stats.DirtyBytes))
	fw.u64(fs.stats.Syncs)
	if fw.err != nil {
		return fw.err
	}
	return fw.w.Flush()
}

// Load reconstructs a file system saved by Save.
func Load(r io.Reader) (*FS, error) {
	fr := &fsReader{r: bufio.NewReader(r)}
	if magic := fr.u64(); fr.err != nil || magic != fsMagic {
		if fr.err != nil {
			return nil, fr.err
		}
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorruptFS, magic)
	}
	fs := &FS{
		inodes:      make(map[Ino]*inode),
		checkpoints: make(map[uint64]Epoch),
		rootIno:     1,
	}
	fs.epoch = Epoch(fr.u64())
	fs.nextIno = Ino(fr.u64())

	nBlocks := fr.u32()
	if fr.err == nil && nBlocks > 1<<26 {
		return nil, fmt.Errorf("%w: %d blocks", ErrCorruptFS, nBlocks)
	}
	blocks := make([]*block, nBlocks)
	for i := range blocks {
		n := fr.u32()
		if fr.err == nil && n > BlockSize {
			return nil, fmt.Errorf("%w: block of %d bytes", ErrCorruptFS, n)
		}
		blocks[i] = &block{data: fr.bytes(int(n))}
	}

	nInodes := fr.u32()
	if fr.err == nil && nInodes > 1<<26 {
		return nil, fmt.Errorf("%w: %d inodes", ErrCorruptFS, nInodes)
	}
	for i := uint32(0); i < nInodes && fr.err == nil; i++ {
		node := &inode{
			ino:   Ino(fr.u64()),
			kind:  Kind(fr.u8()),
			nlink: int(int32(fr.u32())),
		}
		if node.kind != KindFile && node.kind != KindDir {
			return nil, fmt.Errorf("%w: inode kind %d", ErrCorruptFS, node.kind)
		}
		nVersions := fr.u32()
		for v := uint32(0); v < nVersions && fr.err == nil; v++ {
			fv := fileVersion{
				epoch: Epoch(fr.u64()),
				size:  int64(fr.u64()),
			}
			nb := fr.u32()
			if fr.err == nil && nb > 1<<26 {
				return nil, fmt.Errorf("%w: version with %d blocks", ErrCorruptFS, nb)
			}
			fv.blocks = make([]*block, nb)
			for b := uint32(0); b < nb; b++ {
				ref := fr.u32()
				if ref == holeRef {
					continue
				}
				if int(ref) >= len(blocks) {
					return nil, fmt.Errorf("%w: block ref %d of %d", ErrCorruptFS, ref, len(blocks))
				}
				fv.blocks[b] = blocks[ref]
			}
			node.versions = append(node.versions, fv)
		}
		nEntries := fr.u32()
		if nEntries > 0 {
			node.entries = make(map[string][]dentryVersion, nEntries)
		} else if node.kind == KindDir {
			node.entries = make(map[string][]dentryVersion)
		}
		for e := uint32(0); e < nEntries && fr.err == nil; e++ {
			nameLen := fr.u16()
			name := string(fr.bytes(int(nameLen)))
			nVers := fr.u32()
			hist := make([]dentryVersion, 0, nVers)
			for d := uint32(0); d < nVers; d++ {
				hist = append(hist, dentryVersion{
					epoch: Epoch(fr.u64()),
					ino:   Ino(fr.u64()),
				})
			}
			node.entries[name] = hist
		}
		fs.inodes[node.ino] = node
	}

	nCkpt := fr.u32()
	for i := uint32(0); i < nCkpt && fr.err == nil; i++ {
		c := fr.u64()
		fs.checkpoints[c] = Epoch(fr.u64())
	}
	fs.stats.LogBytes = int64(fr.u64())
	fs.stats.DataBytes = int64(fr.u64())
	fs.stats.Transactions = fr.u64()
	fs.stats.DirtyBytes = int64(fr.u64())
	fs.stats.Syncs = fr.u64()
	if fr.err != nil {
		return nil, fmt.Errorf("lfs: load: %w", fr.err)
	}
	if _, ok := fs.inodes[fs.rootIno]; !ok {
		return nil, fmt.Errorf("%w: no root inode", ErrCorruptFS)
	}
	return fs, nil
}
