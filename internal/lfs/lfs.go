// Package lfs implements DejaView's snapshotting file system substrate:
// a log-structured file system in the style of NILFS (§5.1.1), where every
// modifying transaction appends to the log and therefore yields a snapshot
// point. DejaView associates file-system snapshots with checkpoints by
// storing a counter, incremented on every checkpoint, in both the
// checkpoint image metadata and the file system's log.
//
// The implementation keeps per-inode version chains (the materialized form
// of the log): file writes copy only the affected 4 KiB blocks, so log
// growth is proportional to modified data, and any past epoch can be
// opened as a consistent read-only View in O(log versions) per lookup.
package lfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Epoch is a snapshot point: the sequence number of a modifying
// transaction. Epoch 0 is the empty file system.
type Epoch uint64

// BlockSize is the file data block size.
const BlockSize = 4096

// File system errors.
var (
	ErrNotExist = errors.New("lfs: file does not exist")
	ErrExist    = errors.New("lfs: file already exists")
	ErrIsDir    = errors.New("lfs: is a directory")
	ErrNotDir   = errors.New("lfs: not a directory")
	ErrNotEmpty = errors.New("lfs: directory not empty")
	ErrBadPath  = errors.New("lfs: invalid path")
	ErrNoEpoch  = errors.New("lfs: no such snapshot epoch")
)

// Kind distinguishes inode types.
type Kind uint8

// Inode kinds.
const (
	KindFile Kind = iota + 1
	KindDir
)

// Ino is an inode number.
type Ino uint64

// block is one immutable data block, shared between file versions.
type block struct {
	data []byte // length <= BlockSize
}

// fileVersion is one version of a file's contents.
type fileVersion struct {
	epoch  Epoch
	size   int64
	blocks []*block
}

// dentryVersion is one version of a directory entry binding. ino == 0
// is a tombstone (the name was removed at this epoch).
type dentryVersion struct {
	epoch Epoch
	ino   Ino
}

// inode is a file or directory with its full version history.
type inode struct {
	ino  Ino
	kind Kind
	// file state
	versions []fileVersion
	// directory state: name -> binding history
	entries map[string][]dentryVersion
	// nlink tracks live directory references; unlinked-but-open files
	// keep their inode (and history) alive via the FS inode table.
	nlink int
}

// Stat describes a file or directory.
type Stat struct {
	Ino   Ino
	Kind  Kind
	Size  int64
	Epoch Epoch // epoch of the version examined
}

// GrowthStats accounts log growth for the storage experiments (Figure 4).
type GrowthStats struct {
	// LogBytes is the total bytes appended to the log: data blocks plus
	// per-transaction metadata.
	LogBytes int64
	// DataBytes is the data-block portion.
	DataBytes int64
	// Transactions counts modifying transactions (= snapshot points).
	Transactions uint64
	// DirtyBytes is data written since the last sync (pending
	// writeback); Sync and Snapshot flush it.
	DirtyBytes int64
	// Syncs counts explicit synchronization calls.
	Syncs uint64
}

// A log-structured file system never updates in place: each transaction
// copy-on-writes the touched inode block and, for namespace operations,
// the touched directory block, plus a segment summary. These constants
// model that per-transaction log overhead (NILFS-style 4 KiB metadata
// blocks), which is what makes small-file-heavy workloads like untar
// file-system-dominated in Figure 4.
const (
	writeMetaBytes = BlockSize + 128   // inode block + segment summary
	nsMetaBytes    = 2*BlockSize + 128 // inode + directory block + summary
)

// FS is a log-structured file system instance.
//
// FS is safe for concurrent use.
type FS struct {
	mu      sync.Mutex
	epoch   Epoch
	inodes  map[Ino]*inode
	nextIno Ino
	rootIno Ino
	// checkpoints maps DejaView checkpoint counters to epochs (§5.1.1).
	checkpoints map[uint64]Epoch
	stats       GrowthStats
}

// New creates an empty file system with a root directory.
func New() *FS {
	fs := &FS{
		inodes:      make(map[Ino]*inode),
		nextIno:     2, // 1 is the root, NILFS-style
		checkpoints: make(map[uint64]Epoch),
	}
	root := &inode{ino: 1, kind: KindDir, entries: make(map[string][]dentryVersion), nlink: 1}
	fs.inodes[1] = root
	fs.rootIno = 1
	return fs
}

// splitPath cleans and splits an absolute path into components.
func splitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, fmt.Errorf("%w: %q (must be absolute)", ErrBadPath, path)
	}
	var parts []string
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
		case "..":
			if len(parts) == 0 {
				return nil, fmt.Errorf("%w: %q escapes root", ErrBadPath, path)
			}
			parts = parts[:len(parts)-1]
		default:
			parts = append(parts, p)
		}
	}
	return parts, nil
}

// resolveAt walks the path at a given epoch. Epoch = current for live
// lookups. Returns the inode.
func (fs *FS) resolveAt(parts []string, at Epoch) (*inode, error) {
	cur := fs.inodes[fs.rootIno]
	for _, name := range parts {
		if cur.kind != KindDir {
			return nil, ErrNotDir
		}
		ino := lookupDentry(cur.entries[name], at)
		if ino == 0 {
			return nil, ErrNotExist
		}
		next, ok := fs.inodes[ino]
		if !ok {
			return nil, ErrNotExist
		}
		cur = next
	}
	return cur, nil
}

// lookupDentry finds the binding in effect at epoch `at`.
func lookupDentry(hist []dentryVersion, at Epoch) Ino {
	i := sort.Search(len(hist), func(i int) bool { return hist[i].epoch > at })
	if i == 0 {
		return 0
	}
	return hist[i-1].ino
}

// lookupVersion finds the file version in effect at epoch `at`.
func lookupVersion(vs []fileVersion, at Epoch) *fileVersion {
	i := sort.Search(len(vs), func(i int) bool { return vs[i].epoch > at })
	if i == 0 {
		return nil
	}
	return &vs[i-1]
}

// bump starts a modifying transaction: advance the epoch and account the
// log append.
func (fs *FS) bump(dataBytes, metaBytes int64) Epoch {
	fs.epoch++
	fs.stats.Transactions++
	fs.stats.LogBytes += dataBytes + metaBytes
	fs.stats.DataBytes += dataBytes
	fs.stats.DirtyBytes += dataBytes + metaBytes
	return fs.epoch
}

// resolveParent returns the parent directory inode and the leaf name.
func (fs *FS) resolveParent(path string) (*inode, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", fmt.Errorf("%w: %q is the root", ErrBadPath, path)
	}
	dir, err := fs.resolveAt(parts[:len(parts)-1], fs.epoch)
	if err != nil {
		return nil, "", err
	}
	if dir.kind != KindDir {
		return nil, "", ErrNotDir
	}
	return dir, parts[len(parts)-1], nil
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, name, err := fs.resolveParent(path)
	if err != nil {
		return err
	}
	if lookupDentry(dir.entries[name], fs.epoch) != 0 {
		return fmt.Errorf("%w: %s", ErrExist, path)
	}
	child := &inode{
		ino:     fs.nextIno,
		kind:    KindDir,
		entries: make(map[string][]dentryVersion),
		nlink:   1,
	}
	fs.nextIno++
	fs.inodes[child.ino] = child
	e := fs.bump(0, nsMetaBytes)
	dir.entries[name] = append(dir.entries[name], dentryVersion{epoch: e, ino: child.ino})
	return nil
}

// MkdirAll creates a directory and all missing parents.
func (fs *FS) MkdirAll(path string) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	cur := "/"
	for _, p := range parts {
		cur = joinPath(cur, p)
		err := fs.Mkdir(cur)
		if err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

func joinPath(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// Create creates an empty file; it fails if the path exists.
func (fs *FS) Create(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.createLocked(path)
}

func (fs *FS) createLocked(path string) error {
	dir, name, err := fs.resolveParent(path)
	if err != nil {
		return err
	}
	if lookupDentry(dir.entries[name], fs.epoch) != 0 {
		return fmt.Errorf("%w: %s", ErrExist, path)
	}
	child := &inode{ino: fs.nextIno, kind: KindFile, nlink: 1}
	fs.nextIno++
	e := fs.bump(0, nsMetaBytes)
	child.versions = []fileVersion{{epoch: e}}
	fs.inodes[child.ino] = child
	dir.entries[name] = append(dir.entries[name], dentryVersion{epoch: e, ino: child.ino})
	return nil
}

// WriteAt writes data at a byte offset, extending the file as needed.
// Only modified blocks are copied; untouched blocks are shared with prior
// versions (the log-structured property). The file is created when absent.
func (fs *FS) WriteAt(path string, off int64, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	node, err := fs.resolveAt(parts, fs.epoch)
	if errors.Is(err, ErrNotExist) {
		if err := fs.createLocked(path); err != nil {
			return err
		}
		node, err = fs.resolveAt(parts, fs.epoch)
	}
	if err != nil {
		return err
	}
	if node.kind != KindFile {
		return fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	if off < 0 {
		return fmt.Errorf("%w: negative offset", ErrBadPath)
	}
	cur := lookupVersion(node.versions, fs.epoch)
	nv, written := writeVersion(cur, off, data)
	e := fs.bump(written, writeMetaBytes)
	nv.epoch = e
	node.versions = append(node.versions, nv)
	return nil
}

// writeVersion produces a new file version with data written at off,
// sharing unmodified blocks with cur. It returns the version and the
// number of newly logged data bytes.
func writeVersion(cur *fileVersion, off int64, data []byte) (fileVersion, int64) {
	newSize := off + int64(len(data))
	var oldSize int64
	var oldBlocks []*block
	if cur != nil {
		oldSize = cur.size
		oldBlocks = cur.blocks
	}
	if newSize < oldSize {
		newSize = oldSize
	}
	nBlocks := int((newSize + BlockSize - 1) / BlockSize)
	blocks := make([]*block, nBlocks)
	copy(blocks, oldBlocks)

	var logged int64
	first := int(off / BlockSize)
	last := int((off + int64(len(data)) - 1) / BlockSize)
	if len(data) == 0 {
		return fileVersion{size: newSize, blocks: blocks}, 0
	}
	for bi := first; bi <= last; bi++ {
		// Copy-on-write the affected block.
		nb := &block{data: make([]byte, BlockSize)}
		if bi < len(oldBlocks) && oldBlocks[bi] != nil {
			copy(nb.data, oldBlocks[bi].data)
		}
		// Splice in the overlapping part of data.
		bStart := int64(bi) * BlockSize
		from := max(off, bStart)
		to := min(off+int64(len(data)), bStart+BlockSize)
		copy(nb.data[from-bStart:to-bStart], data[from-off:to-off])
		blocks[bi] = nb
		logged += BlockSize
	}
	return fileVersion{size: newSize, blocks: blocks}, logged
}

// WriteFile replaces a file's entire contents (the common desktop-app
// save pattern the paper notes).
func (fs *FS) WriteFile(path string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	node, err := fs.resolveAt(parts, fs.epoch)
	if errors.Is(err, ErrNotExist) {
		if err := fs.createLocked(path); err != nil {
			return err
		}
		node, err = fs.resolveAt(parts, fs.epoch)
	}
	if err != nil {
		return err
	}
	if node.kind != KindFile {
		return fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	nv, logged := writeVersion(nil, 0, data)
	nv.size = int64(len(data))
	e := fs.bump(logged, writeMetaBytes)
	nv.epoch = e
	node.versions = append(node.versions, nv)
	return nil
}

// Truncate sets the file size, zero-filling on extension.
func (fs *FS) Truncate(path string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	node, err := fs.resolveAt(parts, fs.epoch)
	if err != nil {
		return err
	}
	if node.kind != KindFile {
		return fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	cur := lookupVersion(node.versions, fs.epoch)
	data, _ := readVersion(cur, 0, cur.size)
	if int64(len(data)) > size {
		data = data[:size]
	} else {
		data = append(data, make([]byte, size-int64(len(data)))...)
	}
	nv, logged := writeVersion(nil, 0, data)
	nv.size = size
	e := fs.bump(logged, writeMetaBytes)
	nv.epoch = e
	node.versions = append(node.versions, nv)
	return nil
}

// readVersion extracts [off, off+n) from a version.
func readVersion(v *fileVersion, off, n int64) ([]byte, error) {
	if v == nil {
		return nil, ErrNotExist
	}
	if off < 0 {
		return nil, fmt.Errorf("%w: negative offset", ErrBadPath)
	}
	if off >= v.size {
		return nil, nil
	}
	if off+n > v.size {
		n = v.size - off
	}
	out := make([]byte, n)
	for i := int64(0); i < n; {
		bi := int((off + i) / BlockSize)
		bOff := (off + i) % BlockSize
		chunk := min(BlockSize-bOff, n-i)
		if bi < len(v.blocks) && v.blocks[bi] != nil {
			copy(out[i:i+chunk], v.blocks[bi].data[bOff:bOff+chunk])
		}
		i += chunk
	}
	return out, nil
}

// ReadFile reads a file's entire current contents.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.readFileAtLocked(path, fs.epoch)
}

func (fs *FS) readFileAtLocked(path string, at Epoch) ([]byte, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	node, err := fs.resolveAt(parts, at)
	if err != nil {
		return nil, err
	}
	if node.kind != KindFile {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	v := lookupVersion(node.versions, at)
	if v == nil {
		return nil, ErrNotExist
	}
	return readVersion(v, 0, v.size)
}

// Remove unlinks a file or removes an empty directory. The inode (and its
// version history) survives in the inode table, which is what lets the
// checkpoint engine relink unlinked-but-open files (§5.1.2).
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, name, err := fs.resolveParent(path)
	if err != nil {
		return err
	}
	ino := lookupDentry(dir.entries[name], fs.epoch)
	if ino == 0 {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	node := fs.inodes[ino]
	if node.kind == KindDir {
		for n, hist := range node.entries {
			if lookupDentry(hist, fs.epoch) != 0 {
				return fmt.Errorf("%w: %s contains %s", ErrNotEmpty, path, n)
			}
		}
	}
	e := fs.bump(0, nsMetaBytes)
	dir.entries[name] = append(dir.entries[name], dentryVersion{epoch: e, ino: 0})
	node.nlink--
	return nil
}

// Rename moves a file or directory. Implemented as a single transaction:
// both directory updates share one epoch.
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	oldDir, oldName, err := fs.resolveParent(oldPath)
	if err != nil {
		return err
	}
	ino := lookupDentry(oldDir.entries[oldName], fs.epoch)
	if ino == 0 {
		return fmt.Errorf("%w: %s", ErrNotExist, oldPath)
	}
	newDir, newName, err := fs.resolveParent(newPath)
	if err != nil {
		return err
	}
	if lookupDentry(newDir.entries[newName], fs.epoch) != 0 {
		return fmt.Errorf("%w: %s", ErrExist, newPath)
	}
	e := fs.bump(0, nsMetaBytes)
	oldDir.entries[oldName] = append(oldDir.entries[oldName], dentryVersion{epoch: e, ino: 0})
	newDir.entries[newName] = append(newDir.entries[newName], dentryVersion{epoch: e, ino: ino})
	return nil
}

// Link creates an additional name for an existing file (used by the
// checkpoint engine to relink unlinked-but-open files into a hidden
// directory before a snapshot).
func (fs *FS) Link(existing, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parts, err := splitPath(existing)
	if err != nil {
		return err
	}
	node, err := fs.resolveAt(parts, fs.epoch)
	if err != nil {
		return err
	}
	if node.kind != KindFile {
		return fmt.Errorf("%w: %s", ErrIsDir, existing)
	}
	return fs.linkInoLocked(node.ino, newPath)
}

// LinkIno links an inode number directly to a path; the checkpoint engine
// uses it for files that no longer have any name.
func (fs *FS) LinkIno(ino Ino, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.linkInoLocked(ino, newPath)
}

func (fs *FS) linkInoLocked(ino Ino, newPath string) error {
	node, ok := fs.inodes[ino]
	if !ok {
		return fmt.Errorf("%w: inode %d", ErrNotExist, ino)
	}
	dir, name, err := fs.resolveParent(newPath)
	if err != nil {
		return err
	}
	if lookupDentry(dir.entries[name], fs.epoch) != 0 {
		return fmt.Errorf("%w: %s", ErrExist, newPath)
	}
	e := fs.bump(0, nsMetaBytes)
	dir.entries[name] = append(dir.entries[name], dentryVersion{epoch: e, ino: ino})
	node.nlink++
	return nil
}

// InoOf returns the inode number behind a path.
func (fs *FS) InoOf(path string) (Ino, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parts, err := splitPath(path)
	if err != nil {
		return 0, err
	}
	node, err := fs.resolveAt(parts, fs.epoch)
	if err != nil {
		return 0, err
	}
	return node.ino, nil
}

// ReadDir lists the live entries of a directory, sorted by name.
func (fs *FS) ReadDir(path string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.readDirAtLocked(path, fs.epoch)
}

func (fs *FS) readDirAtLocked(path string, at Epoch) ([]string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	node, err := fs.resolveAt(parts, at)
	if err != nil {
		return nil, err
	}
	if node.kind != KindDir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
	}
	var names []string
	for name, hist := range node.entries {
		if lookupDentry(hist, at) != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Stat describes the file or directory at path.
func (fs *FS) Stat(path string) (Stat, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.statAtLocked(path, fs.epoch)
}

func (fs *FS) statAtLocked(path string, at Epoch) (Stat, error) {
	parts, err := splitPath(path)
	if err != nil {
		return Stat{}, err
	}
	node, err := fs.resolveAt(parts, at)
	if err != nil {
		return Stat{}, err
	}
	st := Stat{Ino: node.ino, Kind: node.kind, Epoch: at}
	if node.kind == KindFile {
		if v := lookupVersion(node.versions, at); v != nil {
			st.Size = v.size
		}
	}
	return st, nil
}

// Exists reports whether path resolves.
func (fs *FS) Exists(path string) bool {
	_, err := fs.Stat(path)
	return err == nil
}

// Sync flushes dirty data to the log, returning the number of bytes
// flushed. The checkpoint engine calls this as the pre-snapshot (§5.1.2)
// so that little or no data remains to write while processes are stopped.
func (fs *FS) Sync() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.Syncs++
	n := fs.stats.DirtyBytes
	fs.stats.DirtyBytes = 0
	return n
}

// Snapshot flushes remaining dirty data and returns the current epoch as
// a snapshot point. Since operations never overwrite existing snapshot
// state, this is cheap: it is just a log position.
func (fs *FS) Snapshot() (Epoch, int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	flushed := fs.stats.DirtyBytes
	fs.stats.DirtyBytes = 0
	return fs.epoch, flushed
}

// TagCheckpoint records the association between a DejaView checkpoint
// counter and the current epoch, mirroring the counter stored in both the
// checkpoint image and the file system log.
func (fs *FS) TagCheckpoint(counter uint64) Epoch {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.checkpoints[counter] = fs.epoch
	return fs.epoch
}

// EpochForCheckpoint looks up the snapshot epoch recorded for a
// checkpoint counter.
func (fs *FS) EpochForCheckpoint(counter uint64) (Epoch, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	e, ok := fs.checkpoints[counter]
	if !ok {
		return 0, fmt.Errorf("%w: checkpoint %d", ErrNoEpoch, counter)
	}
	return e, nil
}

// CurrentEpoch reports the current epoch.
func (fs *FS) CurrentEpoch() Epoch {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.epoch
}

// VisibleBytes reports the total size of all files visible at the
// current epoch. The storage experiments report snapshot overhead as log
// growth minus visible size, following the paper's methodology.
func (fs *FS) VisibleBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.visibleBytesLocked(fs.inodes[fs.rootIno])
}

func (fs *FS) visibleBytesLocked(dir *inode) int64 {
	var sum int64
	for _, hist := range dir.entries {
		ino := lookupDentry(hist, fs.epoch)
		if ino == 0 {
			continue
		}
		node, ok := fs.inodes[ino]
		if !ok {
			continue
		}
		switch node.kind {
		case KindFile:
			if v := lookupVersion(node.versions, fs.epoch); v != nil {
				sum += v.size
			}
		case KindDir:
			sum += fs.visibleBytesLocked(node)
		}
	}
	return sum
}

// Stats returns a copy of the growth counters.
func (fs *FS) Stats() GrowthStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// At opens a read-only view of the file system as of a snapshot epoch.
func (fs *FS) At(e Epoch) (*View, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if e > fs.epoch {
		return nil, fmt.Errorf("%w: %d (current %d)", ErrNoEpoch, e, fs.epoch)
	}
	return &View{fs: fs, epoch: e}, nil
}

// View is a read-only snapshot of the file system at one epoch. Standard
// snapshotting file systems only provide read-only snapshots (§5.2); the
// unionfs package joins a View with a writable FS for revived sessions.
type View struct {
	fs    *FS
	epoch Epoch
}

// Epoch reports the snapshot point.
func (v *View) Epoch() Epoch { return v.epoch }

// ReadFile reads a file's contents as of the snapshot.
func (v *View) ReadFile(path string) ([]byte, error) {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	return v.fs.readFileAtLocked(path, v.epoch)
}

// ReadDir lists a directory as of the snapshot.
func (v *View) ReadDir(path string) ([]string, error) {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	return v.fs.readDirAtLocked(path, v.epoch)
}

// Stat describes a path as of the snapshot.
func (v *View) Stat(path string) (Stat, error) {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	return v.fs.statAtLocked(path, v.epoch)
}

// Exists reports whether path resolved at the snapshot.
func (v *View) Exists(path string) bool {
	_, err := v.Stat(path)
	return err == nil
}
