package lfs

import "testing"

func TestVisibleBytes(t *testing.T) {
	fs := New()
	if fs.VisibleBytes() != 0 {
		t.Error("empty FS should have 0 visible bytes")
	}
	if err := fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/b/f1", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/f2", make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	if got := fs.VisibleBytes(); got != 150 {
		t.Errorf("VisibleBytes = %d, want 150", got)
	}
	// Overwriting shrinks visibility but not the log.
	log0 := fs.Stats().LogBytes
	if err := fs.WriteFile("/a/f2", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if got := fs.VisibleBytes(); got != 110 {
		t.Errorf("after shrink VisibleBytes = %d, want 110", got)
	}
	if fs.Stats().LogBytes <= log0 {
		t.Error("log should only grow")
	}
	// Removal hides the file but the log keeps everything.
	if err := fs.Remove("/a/b/f1"); err != nil {
		t.Fatal(err)
	}
	if got := fs.VisibleBytes(); got != 10 {
		t.Errorf("after remove VisibleBytes = %d, want 10", got)
	}
	// Snapshot overhead = log minus visible, strictly positive here.
	if fs.Stats().LogBytes-fs.VisibleBytes() <= 0 {
		t.Error("snapshot overhead should be positive")
	}
}

func TestNamespaceOpsCostMoreMetadata(t *testing.T) {
	// A create (namespace op) must log more metadata than a data write
	// to an existing file — the per-small-file overhead behind untar's
	// FS-dominated storage growth.
	fs1 := New()
	if err := fs1.Create("/f"); err != nil {
		t.Fatal(err)
	}
	createCost := fs1.Stats().LogBytes

	fs2 := New()
	if err := fs2.Create("/f"); err != nil {
		t.Fatal(err)
	}
	before := fs2.Stats().LogBytes
	if err := fs2.WriteAt("/f", 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	writeMetaCost := fs2.Stats().LogBytes - before - BlockSize // minus the data block
	if writeMetaCost >= createCost {
		t.Errorf("write meta %d should be below namespace meta %d", writeMetaCost, createCost)
	}
}
