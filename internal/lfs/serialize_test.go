package lfs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	fs := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(fs.MkdirAll("/home/user"))
	must(fs.WriteFile("/home/user/a.txt", []byte("first version")))
	e1 := fs.CurrentEpoch()
	must(fs.WriteFile("/home/user/a.txt", []byte("second version")))
	must(fs.WriteFile("/home/user/b.txt", bytes.Repeat([]byte{7}, 3*BlockSize)))
	must(fs.Remove("/home/user/a.txt"))
	fs.TagCheckpoint(42)

	var buf bytes.Buffer
	must(fs.Save(&buf))
	got, err := Load(&buf)
	must(err)

	// Current state.
	if got.Exists("/home/user/a.txt") {
		t.Error("removed file visible after reload")
	}
	b, err := got.ReadFile("/home/user/b.txt")
	must(err)
	if len(b) != 3*BlockSize || b[0] != 7 {
		t.Error("b.txt content wrong after reload")
	}
	// History: epoch e1 still shows the first version.
	v, err := got.At(e1)
	must(err)
	a, err := v.ReadFile("/home/user/a.txt")
	must(err)
	if string(a) != "first version" {
		t.Errorf("historical read = %q", a)
	}
	// Checkpoint association survives.
	ep, err := got.EpochForCheckpoint(42)
	must(err)
	if ep != fs.CurrentEpoch() {
		t.Errorf("checkpoint epoch %d, want %d", ep, fs.CurrentEpoch())
	}
	// Stats survive.
	if got.Stats().LogBytes != fs.Stats().LogBytes {
		t.Error("stats lost")
	}
	// The reloaded FS keeps working.
	must(got.WriteFile("/home/user/c.txt", []byte("post-reload")))
	if got.CurrentEpoch() <= fs.CurrentEpoch() {
		t.Error("epoch did not advance after reload")
	}
}

func TestSaveLoadPreservesBlockSharing(t *testing.T) {
	fs := New()
	big := bytes.Repeat([]byte{1}, 64*BlockSize)
	if err := fs.WriteFile("/big", big); err != nil {
		t.Fatal(err)
	}
	// 63 single-byte overwrites: each version shares 63 blocks.
	for i := 0; i < 63; i++ {
		if err := fs.WriteAt("/big", int64(i)*BlockSize, []byte{2}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := fs.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Without dedup the file would serialize 64 versions × 64 blocks
	// = 16 MB; with sharing it is ~127 distinct blocks ≈ 0.5 MB.
	if buf.Len() > 2<<20 {
		t.Errorf("serialized size %d suggests block sharing was lost", buf.Len())
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := got.ReadFile("/big")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 63; i++ {
		if data[i*BlockSize] != 2 {
			t.Fatalf("block %d lost its overwrite", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a filesystem"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncations of a valid stream fail cleanly.
	fs := New()
	if err := fs.WriteFile("/f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fs.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{9, 25, len(full) / 2, len(full) - 3} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if !errors.Is(mustErr(Load(bytes.NewReader(append([]byte("XXXXXXXX"), full[8:]...)))), ErrCorruptFS) {
		t.Error("bad magic not reported as corruption")
	}
}

func mustErr[T any](_ T, err error) error { return err }

// Property: save/load round-trips arbitrary operation histories,
// including all snapshots.
func TestSerializeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := New()
		paths := []string{"/a", "/b", "/d/c"}
		_ = fs.MkdirAll("/d")
		type snap struct {
			epoch Epoch
			path  string
			data  []byte
		}
		var snaps []snap
		for i := 0; i < 40; i++ {
			p := paths[rng.Intn(len(paths))]
			switch rng.Intn(3) {
			case 0, 1:
				data := make([]byte, rng.Intn(2*BlockSize))
				rng.Read(data)
				if err := fs.WriteFile(p, data); err != nil {
					return false
				}
				snaps = append(snaps, snap{fs.CurrentEpoch(), p, data})
			case 2:
				_ = fs.Remove(p)
			}
		}
		var buf bytes.Buffer
		if err := fs.Save(&buf); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		for _, s := range snaps {
			v, err := got.At(s.epoch)
			if err != nil {
				return false
			}
			data, err := v.ReadFile(s.path)
			if err != nil || !bytes.Equal(data, s.data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
