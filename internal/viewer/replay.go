package viewer

import (
	"fmt"
	"io"

	"dejaview/internal/display"
	"dejaview/internal/playback"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
)

// ServeRecord streams a display record to a viewer connection: "the
// display record can be easily replayed either locally or over the
// network using a simple application similar to the normal viewer"
// (§4.1). The stream starts at `from`, runs to the end of the record at
// the given rate (a nil sleeper plays as fast as possible), and then
// closes.
//
// The client side is the ordinary Client: it cannot tell a replayed
// record from a live session.
func ServeRecord(store *record.Store, conn io.ReadWriter, from simclock.Time, rate float64, sleep playback.Sleeper) error {
	if err := WriteFrame(conn, FrameHello, EncodeHello(store.Width, store.Height)); err != nil {
		return fmt.Errorf("viewer: replay hello: %w", err)
	}
	p := playback.New(store, 8)
	if err := p.SeekTo(from); err != nil {
		return err
	}
	// Initial state: the seeked screen.
	if err := WriteFrame(conn, FrameScreen, display.EncodeScreenshot(nil, p.Screen())); err != nil {
		return fmt.Errorf("viewer: replay screen: %w", err)
	}
	if rate <= 0 {
		return fmt.Errorf("viewer: non-positive replay rate %v", rate)
	}
	// Walk the command log once, pacing and forwarding everything after
	// the seeked position.
	last := p.Position()
	for off := int64(0); off < store.EndOfCommands(); {
		c, next, err := store.DecodeCommandAt(off)
		if err != nil {
			return err
		}
		off = next
		if c.Time <= p.Position() {
			continue // already baked into the initial screen
		}
		if sleep != nil && c.Time > last {
			sleep(simclock.Time(float64(c.Time-last) / rate))
		}
		if c.Time > last {
			last = c.Time
		}
		buf, err := display.EncodeCommand(nil, &c)
		if err != nil {
			return err
		}
		if err := WriteFrame(conn, FrameCommand, buf); err != nil {
			return err
		}
	}
	return nil
}
