package viewer

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// frameBytes hand-assembles a frame header + payload prefix.
func frameBytes(kind byte, declared uint32, payload []byte) []byte {
	var hdr [5]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], declared)
	return append(hdr[:], payload...)
}

func TestReadFrameRejectsOversizeLength(t *testing.T) {
	r := bytes.NewReader(frameBytes(FrameCommand, MaxFrame+1, nil))
	if _, _, err := ReadFrame(r); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversize frame err = %v, want ErrProtocol", err)
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	// Declares 1000 bytes, delivers 10: a protocol error, not a bare EOF.
	r := bytes.NewReader(frameBytes(FrameCommand, 1000, make([]byte, 10)))
	if _, _, err := ReadFrame(r); !errors.Is(err, ErrProtocol) {
		t.Errorf("truncated frame err = %v, want ErrProtocol", err)
	}
}

func TestReadFrameHeaderEOFPassesThrough(t *testing.T) {
	// A clean end of stream at a frame boundary is io.EOF, so serve loops
	// can distinguish disconnect from corruption.
	if _, _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream err = %v, want io.EOF", err)
	}
}

func TestReadFrameCappedAllocation(t *testing.T) {
	// A hostile peer declares a maximum-size frame but sends only a
	// trickle. The reader must not allocate the declared size up front;
	// its buffer may grow at most one chunk beyond the delivered bytes.
	delivered := 3 * readChunk / 2
	r := bytes.NewReader(frameBytes(FrameCommand, MaxFrame, make([]byte, delivered)))
	_, _, err := ReadFrame(r)
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("trickle frame err = %v, want ErrProtocol", err)
	}
	// Allocation behaviour: reading a fully-delivered large frame works.
	big := make([]byte, 3*readChunk+17)
	for i := range big {
		big[i] = byte(i)
	}
	kind, payload, err := ReadFrame(bytes.NewReader(frameBytes(FrameScreen, uint32(len(big)), big)))
	if err != nil || kind != FrameScreen || !bytes.Equal(payload, big) {
		t.Fatalf("large frame round trip: kind=%d len=%d err=%v", kind, len(payload), err)
	}
}

func TestWriteFrameRefusesOversizePayload(t *testing.T) {
	var sink bytes.Buffer
	err := WriteFrame(&sink, FrameCommand, make([]byte, MaxFrame+1))
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("oversize write err = %v, want ErrProtocol", err)
	}
	if sink.Len() != 0 {
		t.Errorf("oversize write emitted %d bytes", sink.Len())
	}
}
