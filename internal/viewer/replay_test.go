package viewer

import (
	"io"
	"net"
	"testing"

	"dejaview/internal/display"
	"dejaview/internal/record"
	"dejaview/internal/simclock"
)

// replayRecord builds a record with n one-per-second fills.
func replayRecord(t *testing.T, n int) *record.Store {
	t.Helper()
	s := record.NewStore(32, 32)
	fb := display.NewFramebuffer(32, 32)
	s.AppendScreenshot(0, fb)
	for i := 0; i < n; i++ {
		c := display.SolidFill(simclock.Time(i+1)*simclock.Second,
			display.NewRect(i%32, 0, 1, 32), display.Pixel(i+1))
		if err := fb.Apply(&c); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AppendCommand(&c); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestServeRecordFullReplay(t *testing.T) {
	store := replayRecord(t, 10)
	sc, cc := net.Pipe()
	defer cc.Close()
	serveDone := make(chan error, 1)
	go func() {
		defer sc.Close()
		serveDone <- ServeRecord(store, sc, 0, 1, nil)
	}()
	c, err := Connect(cc)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := c.Run()
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
	if applied != 10 {
		t.Errorf("applied %d commands, want 10", applied)
	}
	// The client ends with the record's final state.
	want := display.NewFramebuffer(32, 32)
	for off := int64(0); off < store.EndOfCommands(); {
		cmd, next, err := store.DecodeCommandAt(off)
		if err != nil {
			t.Fatal(err)
		}
		if err := want.Apply(&cmd); err != nil {
			t.Fatal(err)
		}
		off = next
	}
	if !c.Screen().Equal(want) {
		t.Error("replayed client screen differs from the record")
	}
}

func TestServeRecordFromOffset(t *testing.T) {
	store := replayRecord(t, 10)
	sc, cc := net.Pipe()
	defer cc.Close()
	go func() {
		defer sc.Close()
		_ = ServeRecord(store, sc, 5*simclock.Second, 1, nil)
	}()
	c, err := Connect(cc)
	if err != nil {
		t.Fatal(err)
	}
	// Initial screen already includes commands 1..5.
	if got := c.Screen().At(4, 0); got != 5 {
		t.Errorf("initial screen missing seeked state: %v", got)
	}
	applied, err := c.Run()
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if applied != 5 {
		t.Errorf("applied %d commands after the seek, want 5", applied)
	}
}

func TestServeRecordPacing(t *testing.T) {
	store := replayRecord(t, 4)
	sc, cc := net.Pipe()
	defer cc.Close()
	var slept simclock.Time
	go func() {
		defer sc.Close()
		_ = ServeRecord(store, sc, 0, 2.0, func(d simclock.Time) { slept += d })
	}()
	c, err := Connect(cc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	// 4 seconds of record at 2x = 2 seconds of pacing.
	if slept != 2*simclock.Second {
		t.Errorf("slept %v, want 2s", slept)
	}
}

func TestServeRecordBadRate(t *testing.T) {
	store := replayRecord(t, 2)
	sc, cc := net.Pipe()
	defer sc.Close()
	defer cc.Close()
	done := make(chan error, 1)
	go func() { done <- ServeRecord(store, sc, 0, 0, nil) }()
	if _, err := Connect(cc); err == nil {
		// hello+screen arrive before the rate check fails; drain.
		_ = err
	}
	if err := <-done; err == nil {
		t.Error("zero rate accepted")
	}
}
