package viewer

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"

	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/simclock"
)

func TestInputEventRoundTrip(t *testing.T) {
	events := []InputEvent{
		{Kind: InputKey, Time: 5 * simclock.Second, Key: 0x41, Down: true},
		{Kind: InputPointerMove, Time: 6 * simclock.Second, X: 100, Y: -3},
		{Kind: InputPointerButton, Time: 7 * simclock.Second, X: 10, Y: 20, Button: 1, Down: false},
	}
	for _, e := range events {
		got, err := DecodeInput(EncodeInput(&e))
		if err != nil {
			t.Fatalf("%+v: %v", e, err)
		}
		if got != e {
			t.Errorf("round trip: got %+v want %+v", got, e)
		}
	}
}

func TestInputEventDecodeErrors(t *testing.T) {
	if _, err := DecodeInput([]byte{1, 2}); !errors.Is(err, ErrProtocol) {
		t.Errorf("short decode err = %v", err)
	}
	bad := EncodeInput(&InputEvent{Kind: InputKey})
	bad[0] = 99
	if _, err := DecodeInput(bad); !errors.Is(err, ErrProtocol) {
		t.Errorf("bad kind err = %v", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	w, h, err := DecodeHello(EncodeHello(1024, 768))
	if err != nil || w != 1024 || h != 768 {
		t.Fatalf("hello = %d %d %v", w, h, err)
	}
	if _, _, err := DecodeHello([]byte{1}); !errors.Is(err, ErrProtocol) {
		t.Errorf("short hello err = %v", err)
	}
	if _, _, err := DecodeHello(EncodeHello(0, 5)); !errors.Is(err, ErrProtocol) {
		t.Errorf("zero-size hello err = %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		_ = WriteFrame(a, FrameCommand, []byte("payload"))
	}()
	kind, payload, err := ReadFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameCommand || string(payload) != "payload" {
		t.Errorf("frame = %d %q", kind, payload)
	}
}

// startViewerSession wires a session and a connected client over an
// in-memory pipe.
func startViewerSession(t *testing.T) (*core.Session, *Client, func()) {
	t.Helper()
	s := core.NewSession(core.Config{Width: 64, Height: 48})
	serverConn, clientConn := net.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	var serveErr error
	go func() {
		defer wg.Done()
		serveErr = Serve(s, serverConn)
	}()
	c, err := Connect(clientConn)
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		clientConn.Close()
		serverConn.Close()
		wg.Wait()
		if serveErr != nil && !errors.Is(serveErr, io.ErrClosedPipe) && serveErr != io.EOF {
			t.Logf("serve returned: %v", serveErr)
		}
	}
	return s, c, cleanup
}

func TestViewerHandshake(t *testing.T) {
	_, c, cleanup := startViewerSession(t)
	defer cleanup()
	w, h := c.Screen().Size()
	if w != 64 || h != 48 {
		t.Errorf("client screen %dx%d", w, h)
	}
}

func TestViewerReceivesCommands(t *testing.T) {
	s, c, cleanup := startViewerSession(t)
	defer cleanup()

	if err := s.Display().Submit(display.SolidFill(0,
		display.NewRect(0, 0, 32, 24), display.RGB(9, 9, 9))); err != nil {
		t.Fatal(err)
	}
	// Flush in a goroutine: net.Pipe is synchronous, so the sink write
	// blocks until the client reads.
	done := make(chan error, 1)
	go func() {
		_, err := s.Display().Flush()
		done <- err
	}()
	if err := c.Next(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := c.Screen().At(5, 5); got != display.RGB(9, 9, 9) {
		t.Errorf("client pixel = %#x", got)
	}
	if !c.Screen().Equal(s.Display().Screen()) {
		t.Error("client screen diverged from server")
	}
	if c.Applied() != 1 {
		t.Errorf("Applied = %d", c.Applied())
	}
}

func TestViewerInitialScreenState(t *testing.T) {
	// Content drawn before the viewer connects arrives via the initial
	// screen snapshot (clients are stateless; the server is
	// authoritative).
	s := core.NewSession(core.Config{Width: 32, Height: 32})
	if err := s.Display().Submit(display.SolidFill(0,
		display.NewRect(0, 0, 32, 32), display.RGB(1, 2, 3))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Display().Flush(); err != nil {
		t.Fatal(err)
	}
	serverConn, clientConn := net.Pipe()
	defer serverConn.Close()
	defer clientConn.Close()
	go func() { _ = Serve(s, serverConn) }()
	c, err := Connect(clientConn)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Screen().At(16, 16); got != display.RGB(1, 2, 3) {
		t.Errorf("initial screen pixel = %#x", got)
	}
}

func TestViewerInputReachesPolicy(t *testing.T) {
	s, c, cleanup := startViewerSession(t)
	defer cleanup()

	if err := c.SendKey(0, 'a', true); err != nil {
		t.Fatal(err)
	}
	if err := c.SendPointerMove(0, 5, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.SendPointerButton(0, 5, 5, 1, true); err != nil {
		t.Fatal(err)
	}
	// Input arrives asynchronously on the serve loop; submit display
	// work and tick until the keyboard signal lands in a take.
	deadline := 100
	var took bool
	for i := 0; i < deadline && !took; i++ {
		if err := s.Display().Submit(display.SolidFill(0,
			display.NewRect(0, 0, 2, 2), display.Pixel(i))); err != nil {
			t.Fatal(err)
		}
		// Tiny display change: only the keyboard signal can justify a
		// checkpoint (take-keyboard).
		reason, _, err := s.Tick()
		if err != nil {
			t.Fatal(err)
		}
		took = reason.Take()
		s.Clock().Advance(simclock.Second)
	}
	if !took {
		t.Error("viewer input never produced a keyboard-triggered checkpoint")
	}
}

func TestTwoViewersSeeTheSameStream(t *testing.T) {
	s := core.NewSession(core.Config{Width: 32, Height: 32})
	mk := func() (*Client, func()) {
		sc, cc := net.Pipe()
		go func() { _ = Serve(s, sc) }()
		c, err := Connect(cc)
		if err != nil {
			t.Fatal(err)
		}
		return c, func() { cc.Close(); sc.Close() }
	}
	c1, done1 := mk()
	defer done1()
	c2, done2 := mk()
	defer done2()

	if err := s.Display().Submit(display.SolidFill(0,
		display.NewRect(0, 0, 8, 8), 7)); err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = s.Display().Flush() }()
	if err := c1.Next(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Next(); err != nil {
		t.Fatal(err)
	}
	if !c1.Screen().Equal(c2.Screen()) {
		t.Error("viewers diverged")
	}
}
