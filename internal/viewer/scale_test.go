package viewer

import (
	"net"
	"testing"

	"dejaview/internal/core"
	"dejaview/internal/display"
)

// TestScaledViewer checks §4.1's PDA case: a small client views a
// rescaled stream of a full-resolution desktop while the session records
// at full resolution.
func TestScaledViewer(t *testing.T) {
	s := core.NewSession(core.Config{Width: 640, Height: 480})
	// Distinctive pre-existing content.
	if err := s.Display().Submit(display.SolidFill(0,
		display.NewRect(0, 0, 320, 480), display.RGB(200, 0, 0))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Display().Flush(); err != nil {
		t.Fatal(err)
	}

	sc, cc := net.Pipe()
	defer sc.Close()
	defer cc.Close()
	go func() {
		_ = ServeOpts(s, sc, ServeOptions{ScaleW: 160, ScaleH: 120})
	}()
	c, err := Connect(cc)
	if err != nil {
		t.Fatal(err)
	}
	w, h := c.Screen().Size()
	if w != 160 || h != 120 {
		t.Fatalf("client sees %dx%d, want the PDA size", w, h)
	}
	// The scaled initial screen shows the red left half.
	if got := c.Screen().At(40, 60); got != display.RGB(200, 0, 0) {
		t.Errorf("scaled screen left = %#x", got)
	}
	if got := c.Screen().At(120, 60); got == display.RGB(200, 0, 0) {
		t.Error("scaled screen right should be empty")
	}

	// A live update arrives scaled too.
	if err := s.Display().Submit(display.SolidFill(0,
		display.NewRect(320, 0, 320, 480), display.RGB(0, 0, 250))); err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = s.Display().Flush() }()
	if err := c.Next(); err != nil {
		t.Fatal(err)
	}
	if got := c.Screen().At(120, 60); got != display.RGB(0, 0, 250) {
		t.Errorf("scaled update = %#x", got)
	}

	// Recording stayed at full resolution.
	s.Recorder().Flush()
	if s.Recorder().Store().Width != 640 {
		t.Error("recording resolution affected by the scaled viewer")
	}
}
