package viewer

import (
	"fmt"
	"io"
	"sync"

	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/simclock"
)

// ServeOptions tune one viewer connection.
type ServeOptions struct {
	// ScaleW/ScaleH, when non-zero, rescale the stream to a smaller
	// client — §4.1's PDA case: "the display can be resized to fit the
	// screen of a PDA even though the original resolution is that of a
	// full desktop screen". Recording is unaffected: the recorder's
	// stream is scaled independently.
	ScaleW, ScaleH int
}

// Serve attaches one viewer connection to a session: it sends the hello
// and the current screen, then streams every flushed display command to
// the client while consuming input events from it. Serve returns when
// the connection closes.
//
// Multiple viewers can be served concurrently; each gets the full stream
// (the server's display state is authoritative, clients are stateless).
func Serve(s *core.Session, conn io.ReadWriter) error {
	return ServeOpts(s, conn, ServeOptions{})
}

// ServeOpts is Serve with per-connection options.
func ServeOpts(s *core.Session, conn io.ReadWriter, opts ServeOptions) error {
	w, h := s.Display().Size()
	var scaler *display.Scaler
	if opts.ScaleW > 0 && opts.ScaleH > 0 {
		scaler = display.NewScaler(w, h, opts.ScaleW, opts.ScaleH)
		w, h = opts.ScaleW, opts.ScaleH
	}
	if err := WriteFrame(conn, FrameHello, EncodeHello(w, h)); err != nil {
		return fmt.Errorf("viewer: hello: %w", err)
	}

	// Stream display commands as the server flushes them. The sink only
	// enqueues encoded frames: a dedicated writer goroutine drains the
	// queue to the connection, so a slow (or stuck) client can never
	// stall the session's display flush — it is disconnected instead.
	var errMu sync.Mutex
	var streamErr error
	fail := func(err error) {
		errMu.Lock()
		if streamErr == nil {
			streamErr = err
		}
		errMu.Unlock()
	}
	getErr := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return streamErr
	}

	frames := make(chan []byte, 1024)
	sink := &streamSink{f: func(c *display.Command) {
		if scaler != nil {
			scaled := scaler.ScaleCommand(c)
			c = &scaled
		}
		buf, err := display.EncodeCommand(nil, c)
		if err != nil {
			fail(err)
			return
		}
		select {
		case frames <- buf:
		default:
			fail(fmt.Errorf("viewer: client too slow, %d frames queued", len(frames)))
		}
	}}
	// Snapshot + attach atomically: every command not in the snapshot
	// lands in the queue, which the writer drains only after the
	// initial screen frame — no gaps, no double application.
	screen := s.Display().AttachViewerWithScreen(sink)
	writerDone := make(chan struct{})
	defer func() {
		s.Display().DetachViewer(sink) // no more enqueues after this
		close(frames)
		<-writerDone
	}()

	if scaler != nil {
		screen = scaler.ScaleFramebuffer(screen)
	}
	if err := WriteFrame(conn, FrameScreen, display.EncodeScreenshot(nil, screen)); err != nil {
		return fmt.Errorf("viewer: initial screen: %w", err)
	}
	go func() {
		defer close(writerDone)
		var werr error
		for buf := range frames {
			if werr != nil {
				continue // drain the queue after a dead connection
			}
			if werr = WriteFrame(conn, FrameCommand, buf); werr != nil {
				fail(werr)
			}
		}
	}()

	// Consume input events until the client goes away.
	for {
		kind, payload, err := ReadFrame(conn)
		if err != nil {
			if serr := getErr(); err == io.EOF || serr != nil {
				return serr
			}
			return err
		}
		if kind != FrameInput {
			return fmt.Errorf("%w: unexpected frame %d from client", ErrProtocol, kind)
		}
		e, err := DecodeInput(payload)
		if err != nil {
			return err
		}
		switch e.Kind {
		case InputKey:
			s.NoteKeyboardInput()
		case InputPointerMove, InputPointerButton:
			s.NotePointerInput()
		}
	}
}

// streamSink is a comparable display.Sink (Detach compares identities).
type streamSink struct {
	f func(c *display.Command)
}

// HandleCommand implements display.Sink.
func (s *streamSink) HandleCommand(c *display.Command) { s.f(c) }

// Client is the DejaView viewer: a stateless display client plus an
// input pipe. The same client code views live sessions and (with a
// playback feeder) recorded ones.
//
// Client is safe for concurrent use.
type Client struct {
	conn io.ReadWriter

	mu      sync.Mutex
	fb      *display.Framebuffer
	applied uint64
	writeMu sync.Mutex
}

// Connect performs the client handshake: it reads the hello and the
// initial screen.
func Connect(conn io.ReadWriter) (*Client, error) {
	kind, payload, err := ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	if kind != FrameHello {
		return nil, fmt.Errorf("%w: expected hello, got frame %d", ErrProtocol, kind)
	}
	w, h, err := DecodeHello(payload)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, fb: display.NewFramebuffer(w, h)}

	kind, payload, err = ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	if kind != FrameScreen {
		return nil, fmt.Errorf("%w: expected screen, got frame %d", ErrProtocol, kind)
	}
	fb, _, err := display.DecodeScreenshot(payload)
	if err != nil {
		return nil, err
	}
	if err := c.fb.CopyFrom(fb); err != nil {
		return nil, err
	}
	return c, nil
}

// Next receives and applies one display command; it blocks until a
// command arrives or the connection closes.
func (c *Client) Next() error {
	kind, payload, err := ReadFrame(c.conn)
	if err != nil {
		return err
	}
	switch kind {
	case FrameCommand:
		cmd, _, err := display.DecodeCommand(payload)
		if err != nil {
			return err
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		if err := c.fb.Apply(&cmd); err != nil {
			return err
		}
		c.applied++
		return nil
	case FrameScreen:
		fb, _, err := display.DecodeScreenshot(payload)
		if err != nil {
			return err
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.fb.CopyFrom(fb)
	default:
		return fmt.Errorf("%w: unexpected frame %d from server", ErrProtocol, kind)
	}
}

// Run applies commands until the stream ends, returning the count.
func (c *Client) Run() (uint64, error) {
	for {
		if err := c.Next(); err != nil {
			if err == io.EOF {
				return c.Applied(), nil
			}
			return c.Applied(), err
		}
	}
}

// Screen snapshots the client's current screen.
func (c *Client) Screen() *display.Framebuffer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fb.Snapshot()
}

// Applied reports the number of commands applied.
func (c *Client) Applied() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applied
}

// SendKey sends a key event to the server.
func (c *Client) SendKey(t simclock.Time, key uint32, down bool) error {
	return c.sendInput(&InputEvent{Kind: InputKey, Time: t, Key: key, Down: down})
}

// SendPointerMove sends a pointer motion event.
func (c *Client) SendPointerMove(t simclock.Time, x, y int32) error {
	return c.sendInput(&InputEvent{Kind: InputPointerMove, Time: t, X: x, Y: y})
}

// SendPointerButton sends a pointer button event.
func (c *Client) SendPointerButton(t simclock.Time, x, y int32, button uint8, down bool) error {
	return c.sendInput(&InputEvent{
		Kind: InputPointerButton, Time: t, X: x, Y: y, Button: button, Down: down,
	})
}

func (c *Client) sendInput(e *InputEvent) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return WriteFrame(c.conn, FrameInput, EncodeInput(e))
}
