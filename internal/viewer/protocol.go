// Package viewer implements DejaView's client side (§2, §3): the viewer
// application that acts as a portal to the desktop, displaying the
// server's command stream and sending mouse and keyboard events back.
//
// The functional separation lets viewer and server run in the same
// process or across a network; clients are simple and stateless — all
// persistent display state is maintained by the server — so the desktop
// can be accessed from a wide range of devices, including small-screen
// ones via the scaling support.
package viewer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dejaview/internal/display"
	"dejaview/internal/simclock"
)

// Wire protocol: a tiny framed protocol over any io.ReadWriter.
//
//	frame   := kind(1) length(4) payload
//	kind 1  := display command (display codec encoding)
//	kind 2  := input event
//	kind 3  := hello (server → client: width, height)
//	kind 4  := screen snapshot (screenshot encoding, initial state)
//
// Kinds 16 and up are reserved for the remote access service
// (internal/remote), which multiplexes requests, responses, and streams
// over the same framing.

// Frame kinds.
const (
	FrameCommand byte = 1
	FrameInput   byte = 2
	FrameHello   byte = 3
	FrameScreen  byte = 4
)

// MaxFrame bounds a frame payload (a full-screen raw command at 4K).
const MaxFrame = 64 << 20

// readChunk caps each allocation step while reading a frame payload, so a
// hostile length prefix cannot force a huge up-front allocation (the
// framing-level mirror of the compress decompression-bomb guard): the
// buffer grows only as fast as bytes actually arrive.
const readChunk = 1 << 20

// ErrProtocol reports a malformed frame.
var ErrProtocol = errors.New("viewer: protocol error")

// InputKind classifies input events.
type InputKind uint8

// Input event kinds.
const (
	InputKey InputKind = iota + 1
	InputPointerMove
	InputPointerButton
)

// InputEvent is one user input: a key press or pointer action. Input is
// never recorded by DejaView — only its effect on the display (§2) — but
// it drives the checkpoint policy's keyboard/pointer signals.
type InputEvent struct {
	Kind InputKind
	Time simclock.Time
	// Key is the key code (InputKey).
	Key uint32
	// X, Y is the pointer position (pointer events).
	X, Y int32
	// Button is the pressed button (InputPointerButton).
	Button uint8
	// Down distinguishes press from release.
	Down bool
}

// WriteFrame writes one protocol frame.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: refusing to write %d-byte frame", ErrProtocol, len(payload))
	}
	var hdr [5]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one protocol frame from an untrusted peer. The declared
// length is validated against MaxFrame before any allocation, and the
// payload buffer grows in bounded chunks as bytes arrive, so a malicious
// or corrupt length prefix cannot trigger a runaway allocation. A frame
// truncated mid-payload returns a wrapped ErrProtocol; an io.EOF at a
// frame boundary is passed through as the clean end of the stream.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[1:]))
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes", ErrProtocol, n)
	}
	payload, err := readCapped(r, n)
	if err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// readCapped reads exactly n bytes, growing the buffer at most readChunk
// bytes at a time.
func readCapped(r io.Reader, n int) ([]byte, error) {
	cap0 := n
	if cap0 > readChunk {
		cap0 = readChunk
	}
	payload := make([]byte, 0, cap0)
	for len(payload) < n {
		k := n - len(payload)
		if k > readChunk {
			k = readChunk
		}
		off := len(payload)
		payload = append(payload, make([]byte, k)...)
		if _, err := io.ReadFull(r, payload[off:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("%w: frame truncated at %d of %d payload bytes",
					ErrProtocol, off, n)
			}
			return nil, err
		}
	}
	return payload, nil
}

// EncodeInput serializes an input event.
func EncodeInput(e *InputEvent) []byte {
	buf := make([]byte, 27)
	buf[0] = byte(e.Kind)
	binary.LittleEndian.PutUint64(buf[1:], uint64(e.Time))
	binary.LittleEndian.PutUint32(buf[9:], e.Key)
	binary.LittleEndian.PutUint32(buf[13:], uint32(e.X))
	binary.LittleEndian.PutUint32(buf[17:], uint32(e.Y))
	buf[21] = e.Button
	if e.Down {
		buf[22] = 1
	}
	return buf
}

// DecodeInput deserializes an input event.
func DecodeInput(b []byte) (InputEvent, error) {
	if len(b) < 23 {
		return InputEvent{}, fmt.Errorf("%w: short input event", ErrProtocol)
	}
	e := InputEvent{
		Kind:   InputKind(b[0]),
		Time:   simclock.Time(binary.LittleEndian.Uint64(b[1:])),
		Key:    binary.LittleEndian.Uint32(b[9:]),
		X:      int32(binary.LittleEndian.Uint32(b[13:])),
		Y:      int32(binary.LittleEndian.Uint32(b[17:])),
		Button: b[21],
		Down:   b[22] == 1,
	}
	if e.Kind < InputKey || e.Kind > InputPointerButton {
		return InputEvent{}, fmt.Errorf("%w: input kind %d", ErrProtocol, e.Kind)
	}
	return e, nil
}

// EncodeHello serializes the server greeting.
func EncodeHello(w, h int) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint32(buf[0:], uint32(w))
	binary.LittleEndian.PutUint32(buf[4:], uint32(h))
	return buf
}

// DecodeHello deserializes the server greeting.
func DecodeHello(b []byte) (w, h int, err error) {
	if len(b) < 8 {
		return 0, 0, fmt.Errorf("%w: short hello", ErrProtocol)
	}
	w = int(binary.LittleEndian.Uint32(b[0:]))
	h = int(binary.LittleEndian.Uint32(b[4:]))
	if w <= 0 || h <= 0 || w > 1<<14 || h > 1<<14 {
		return 0, 0, fmt.Errorf("%w: implausible size %dx%d", ErrProtocol, w, h)
	}
	return w, h, nil
}

var _ = display.CmdRaw // used by server/client files
