// Package viewer implements DejaView's client side (§2, §3): the viewer
// application that acts as a portal to the desktop, displaying the
// server's command stream and sending mouse and keyboard events back.
//
// The functional separation lets viewer and server run in the same
// process or across a network; clients are simple and stateless — all
// persistent display state is maintained by the server — so the desktop
// can be accessed from a wide range of devices, including small-screen
// ones via the scaling support.
package viewer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dejaview/internal/display"
	"dejaview/internal/simclock"
)

// Wire protocol: a tiny framed protocol over any io.ReadWriter.
//
//	frame   := kind(1) length(4) payload
//	kind 1  := display command (display codec encoding)
//	kind 2  := input event
//	kind 3  := hello (server → client: width, height)
//	kind 4  := screen snapshot (screenshot encoding, initial state)

// Frame kinds.
const (
	frameCommand byte = 1
	frameInput   byte = 2
	frameHello   byte = 3
	frameScreen  byte = 4
)

// maxFrame bounds a frame payload (a full-screen raw command at 4K).
const maxFrame = 64 << 20

// ErrProtocol reports a malformed frame.
var ErrProtocol = errors.New("viewer: protocol error")

// InputKind classifies input events.
type InputKind uint8

// Input event kinds.
const (
	InputKey InputKind = iota + 1
	InputPointerMove
	InputPointerButton
)

// InputEvent is one user input: a key press or pointer action. Input is
// never recorded by DejaView — only its effect on the display (§2) — but
// it drives the checkpoint policy's keyboard/pointer signals.
type InputEvent struct {
	Kind InputKind
	Time simclock.Time
	// Key is the key code (InputKey).
	Key uint32
	// X, Y is the pointer position (pointer events).
	X, Y int32
	// Button is the pressed button (InputPointerButton).
	Button uint8
	// Down distinguishes press from release.
	Down bool
}

func writeFrame(w io.Writer, kind byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes", ErrProtocol, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// encodeInput serializes an input event.
func encodeInput(e *InputEvent) []byte {
	buf := make([]byte, 27)
	buf[0] = byte(e.Kind)
	binary.LittleEndian.PutUint64(buf[1:], uint64(e.Time))
	binary.LittleEndian.PutUint32(buf[9:], e.Key)
	binary.LittleEndian.PutUint32(buf[13:], uint32(e.X))
	binary.LittleEndian.PutUint32(buf[17:], uint32(e.Y))
	buf[21] = e.Button
	if e.Down {
		buf[22] = 1
	}
	return buf
}

func decodeInput(b []byte) (InputEvent, error) {
	if len(b) < 23 {
		return InputEvent{}, fmt.Errorf("%w: short input event", ErrProtocol)
	}
	e := InputEvent{
		Kind:   InputKind(b[0]),
		Time:   simclock.Time(binary.LittleEndian.Uint64(b[1:])),
		Key:    binary.LittleEndian.Uint32(b[9:]),
		X:      int32(binary.LittleEndian.Uint32(b[13:])),
		Y:      int32(binary.LittleEndian.Uint32(b[17:])),
		Button: b[21],
		Down:   b[22] == 1,
	}
	if e.Kind < InputKey || e.Kind > InputPointerButton {
		return InputEvent{}, fmt.Errorf("%w: input kind %d", ErrProtocol, e.Kind)
	}
	return e, nil
}

// encodeHello serializes the server greeting.
func encodeHello(w, h int) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint32(buf[0:], uint32(w))
	binary.LittleEndian.PutUint32(buf[4:], uint32(h))
	return buf
}

func decodeHello(b []byte) (w, h int, err error) {
	if len(b) < 8 {
		return 0, 0, fmt.Errorf("%w: short hello", ErrProtocol)
	}
	w = int(binary.LittleEndian.Uint32(b[0:]))
	h = int(binary.LittleEndian.Uint32(b[4:]))
	if w <= 0 || h <= 0 || w > 1<<14 || h > 1<<14 {
		return 0, 0, fmt.Errorf("%w: implausible size %dx%d", ErrProtocol, w, h)
	}
	return w, h, nil
}

var _ = display.CmdRaw // used by server/client files
