package policy

import (
	"testing"

	"dejaview/internal/simclock"
)

const sec = simclock.Second

func TestFirstDisplayUpdateTakes(t *testing.T) {
	e := New(DefaultConfig())
	r := e.Decide(Input{Now: 0, DamageFraction: 0.5})
	if r != TakeDisplay {
		t.Errorf("reason = %v, want take-display", r)
	}
}

func TestRateLimitOncePerSecond(t *testing.T) {
	e := New(DefaultConfig())
	takes := 0
	// 100 ms updates for 5 seconds: at most ~5-6 takes.
	for i := 0; i < 50; i++ {
		now := simclock.Time(i) * 100 * simclock.Millisecond
		if e.Decide(Input{Now: now, DamageFraction: 0.5}).Take() {
			takes++
		}
	}
	if takes < 5 || takes > 6 {
		t.Errorf("takes = %d over 5s, want ~5 at 1/s", takes)
	}
	st := e.Stats()
	if st.Counts[SkipRateLimited] == 0 {
		t.Error("rate limiter never engaged")
	}
}

func TestNoActivitySkips(t *testing.T) {
	e := New(DefaultConfig())
	r := e.Decide(Input{Now: 0})
	if r != SkipNoActivity {
		t.Errorf("reason = %v, want skip-no-activity", r)
	}
}

func TestLowActivitySkips(t *testing.T) {
	// Blinking cursor / clock updates: below the 5% threshold.
	e := New(DefaultConfig())
	r := e.Decide(Input{Now: 0, DamageFraction: 0.01})
	if r != SkipLowActivity {
		t.Errorf("reason = %v, want skip-low-activity", r)
	}
}

func TestKeyboardEnablesReducedRate(t *testing.T) {
	e := New(DefaultConfig())
	// Text editing: tiny display changes + keyboard, every second.
	takes := 0
	for i := 0; i < 30; i++ {
		now := simclock.Time(i) * sec
		r := e.Decide(Input{Now: now, DamageFraction: 0.01, KeyboardInput: true})
		if r.Take() {
			takes++
			if r != TakeKeyboard {
				t.Errorf("take reason = %v, want take-keyboard", r)
			}
		}
	}
	// 30 seconds at one per 10s => 3 takes (t=0, 10, 20).
	if takes != 3 {
		t.Errorf("takes = %d, want 3", takes)
	}
	if e.Stats().Counts[SkipTextRate] != 27 {
		t.Errorf("SkipTextRate = %d, want 27", e.Stats().Counts[SkipTextRate])
	}
}

func TestKeyboardWithHighDisplayUsesFullRate(t *testing.T) {
	e := New(DefaultConfig())
	takes := 0
	for i := 0; i < 5; i++ {
		now := simclock.Time(i) * sec
		if e.Decide(Input{Now: now, DamageFraction: 0.5, KeyboardInput: true}).Take() {
			takes++
		}
	}
	if takes != 5 {
		t.Errorf("takes = %d, want 5 (1/s when display is active)", takes)
	}
}

func TestFullscreenVideoSkipped(t *testing.T) {
	e := New(DefaultConfig())
	r := e.Decide(Input{Now: 0, DamageFraction: 1.0, FullscreenVideo: true})
	if r != SkipFullscreen {
		t.Errorf("reason = %v, want skip-fullscreen", r)
	}
	// With user input, video no longer suppresses checkpoints.
	r = e.Decide(Input{Now: 2 * sec, DamageFraction: 1.0, FullscreenVideo: true, UserInput: true})
	if r != TakeDisplay {
		t.Errorf("reason with input = %v, want take-display", r)
	}
}

func TestScreensaverSkipped(t *testing.T) {
	e := New(DefaultConfig())
	r := e.Decide(Input{Now: 0, DamageFraction: 0.3, ScreensaverActive: true})
	if r != SkipFullscreen {
		t.Errorf("reason = %v", r)
	}
}

func TestFullscreenRuleDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipFullscreenNoInput = false
	e := New(cfg)
	r := e.Decide(Input{Now: 0, DamageFraction: 1.0, FullscreenVideo: true})
	if r != TakeDisplay {
		t.Errorf("reason = %v, want take-display when rule disabled", r)
	}
}

func TestCustomLoadRule(t *testing.T) {
	// The paper's example extension: disable checkpoints when load is
	// above a level.
	e := New(DefaultConfig())
	skip := SkipRule
	e.AddRule(func(in Input) *Reason {
		if in.Load > 4.0 {
			return &skip
		}
		return nil
	})
	r := e.Decide(Input{Now: 0, DamageFraction: 0.9, Load: 8.0})
	if r != SkipRule {
		t.Errorf("reason = %v, want skip-rule", r)
	}
	r = e.Decide(Input{Now: sec, DamageFraction: 0.9, Load: 0.5})
	if r != TakeDisplay {
		t.Errorf("reason = %v, want take-display under low load", r)
	}
}

func TestStatsAggregation(t *testing.T) {
	e := New(DefaultConfig())
	e.Decide(Input{Now: 0, DamageFraction: 0.5})                          // take
	e.Decide(Input{Now: 100 * simclock.Millisecond, DamageFraction: 0.5}) // rate-limited
	e.Decide(Input{Now: 2 * sec})                                         // no activity
	st := e.Stats()
	if st.Takes() != 1 {
		t.Errorf("Takes = %d", st.Takes())
	}
	if st.Skips() != 2 {
		t.Errorf("Skips = %d", st.Skips())
	}
}

func TestTakeReasonPredicate(t *testing.T) {
	for r := TakeDisplay; r < numReasons; r++ {
		want := r == TakeDisplay || r == TakeKeyboard || r == TakeRule
		if r.Take() != want {
			t.Errorf("%v.Take() = %v", r, r.Take())
		}
		if r.String() == "reason(?)" {
			t.Errorf("reason %d has no name", r)
		}
	}
}

func TestTunableThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinDisplayFraction = 0.5
	e := New(cfg)
	if r := e.Decide(Input{Now: 0, DamageFraction: 0.3}); r != SkipLowActivity {
		t.Errorf("0.3 under 0.5 threshold: %v", r)
	}
	if r := e.Decide(Input{Now: sec, DamageFraction: 0.6}); r != TakeDisplay {
		t.Errorf("0.6 over 0.5 threshold: %v", r)
	}
}
