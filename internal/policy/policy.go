// Package policy implements DejaView's checkpoint policy engine (§5.1.3).
//
// Desktops are bursty: user input triggers a barrage of changes followed
// by long idle periods, so checkpointing at fixed intervals both misses
// updates and wastes work. DejaView instead checkpoints in response to
// display updates, bounded by a maximum rate, with rules that skip
// checkpoints that would add nothing: no display activity, trivially
// small display activity (blinking cursors, clocks), or full-screen
// video/screensavers without user input. Keyboard input re-enables
// checkpoints even under low display activity — at a reduced rate matched
// to typing speed — so users can return to the points where they created
// data. The rule set is extensible.
package policy

import (
	"sync"

	"dejaview/internal/simclock"
)

// Reason classifies a policy decision.
type Reason int

// Decision reasons.
const (
	// TakeDisplay: display activity above threshold, rate limit open.
	TakeDisplay Reason = iota
	// TakeKeyboard: keyboard input with low display activity, reduced
	// rate open.
	TakeKeyboard
	// TakeRule: a custom rule forced the checkpoint.
	TakeRule
	// SkipNoActivity: no display change and no input.
	SkipNoActivity
	// SkipLowActivity: display change below the threshold fraction.
	SkipLowActivity
	// SkipRateLimited: display-triggered but inside the rate limit.
	SkipRateLimited
	// SkipTextRate: keyboard-triggered but inside the reduced rate.
	SkipTextRate
	// SkipFullscreen: full-screen video/screensaver without input.
	SkipFullscreen
	// SkipRule: a custom rule suppressed the checkpoint.
	SkipRule

	numReasons
)

var reasonNames = [...]string{
	TakeDisplay:     "take-display",
	TakeKeyboard:    "take-keyboard",
	TakeRule:        "take-rule",
	SkipNoActivity:  "skip-no-activity",
	SkipLowActivity: "skip-low-activity",
	SkipRateLimited: "skip-rate-limited",
	SkipTextRate:    "skip-text-rate",
	SkipFullscreen:  "skip-fullscreen",
	SkipRule:        "skip-rule",
}

// String implements fmt.Stringer.
func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return "reason(?)"
}

// Take reports whether the reason means "checkpoint now".
func (r Reason) Take() bool {
	return r == TakeDisplay || r == TakeKeyboard || r == TakeRule
}

// Input is the signal snapshot the engine decides on.
type Input struct {
	// Now is the current time.
	Now simclock.Time
	// DamageFraction is the fraction (0..1) of the screen changed since
	// the last decision.
	DamageFraction float64
	// KeyboardInput reports keystrokes since the last decision.
	KeyboardInput bool
	// UserInput reports any input (keyboard or pointer).
	UserInput bool
	// FullscreenVideo reports a full-screen video player active.
	FullscreenVideo bool
	// ScreensaverActive reports the screensaver running.
	ScreensaverActive bool
	// Load is the system load average, for custom rules.
	Load float64
}

// Rule is a custom policy extension. It returns a non-nil reason to
// force a take/skip decision, or nil to defer to the built-in rules.
type Rule func(in Input) *Reason

// Config tunes the built-in rules; every parameter is user-tunable in
// the paper.
type Config struct {
	// MaxRate is the minimum interval between display-triggered
	// checkpoints (default: 1/s).
	MaxRate simclock.Time
	// TextRate is the minimum interval between keyboard-triggered
	// checkpoints during low display activity (default: 1/10 s — about
	// every seven words for an average typist).
	TextRate simclock.Time
	// MinDisplayFraction is the display-activity threshold below which
	// updates are considered trivial (default: 5% of the screen).
	MinDisplayFraction float64
	// SkipFullscreenNoInput enables the video/screensaver rule.
	SkipFullscreenNoInput bool
}

// DefaultConfig returns the paper's default policy.
func DefaultConfig() Config {
	return Config{
		MaxRate:               simclock.Second,
		TextRate:              10 * simclock.Second,
		MinDisplayFraction:    0.05,
		SkipFullscreenNoInput: true,
	}
}

// Stats is the per-reason decision histogram. The paper reports the
// skip distribution for real desktop usage (13% no activity, 69% low
// activity, 18% reduced text rate).
type Stats struct {
	Counts [numReasons]uint64
}

// Takes sums the take decisions.
func (s *Stats) Takes() uint64 {
	return s.Counts[TakeDisplay] + s.Counts[TakeKeyboard] + s.Counts[TakeRule]
}

// Skips sums the skip decisions.
func (s *Stats) Skips() uint64 {
	var total uint64
	for r := SkipNoActivity; r < numReasons; r++ {
		total += s.Counts[r]
	}
	return total
}

// Engine evaluates the checkpoint policy.
//
// Engine is safe for concurrent use.
type Engine struct {
	mu       sync.Mutex
	cfg      Config
	rules    []Rule
	lastTake simclock.Time
	started  bool
	stats    Stats
}

// New creates a policy engine.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg}
}

// AddRule appends a custom rule, evaluated before the built-in ones
// (§5.1.3: "the policy is also extensible and can include additional
// rules", e.g. skipping under high load).
func (e *Engine) AddRule(r Rule) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rules = append(e.rules, r)
}

// Decide evaluates the policy for the current signals and returns the
// decision reason. A take decision arms the rate limiter.
func (e *Engine) Decide(in Input) Reason {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := e.decideLocked(in)
	e.stats.Counts[r]++
	if r.Take() {
		e.lastTake = in.Now
		e.started = true
	}
	return r
}

func (e *Engine) decideLocked(in Input) Reason {
	for _, rule := range e.rules {
		if r := rule(in); r != nil {
			return *r
		}
	}
	// Full-screen video or screensaver without input: checkpoints are
	// either uninteresting or add nothing beyond the display record.
	if e.cfg.SkipFullscreenNoInput && !in.UserInput &&
		(in.FullscreenVideo || in.ScreensaverActive) {
		return SkipFullscreen
	}
	// Nothing happened at all.
	if in.DamageFraction == 0 && !in.KeyboardInput {
		return SkipNoActivity
	}
	sinceTake := in.Now - e.lastTake
	if in.DamageFraction >= e.cfg.MinDisplayFraction {
		// Display-triggered, bounded by the maximum rate.
		if e.started && sinceTake < e.cfg.MaxRate {
			return SkipRateLimited
		}
		return TakeDisplay
	}
	// Low display activity. Keyboard input still earns checkpoints at
	// the reduced text rate.
	if in.KeyboardInput {
		if e.started && sinceTake < e.cfg.TextRate {
			return SkipTextRate
		}
		return TakeKeyboard
	}
	return SkipLowActivity
}

// Stats returns a copy of the decision histogram.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}
