// Package failpoint is a zero-dependency, deterministic fault-injection
// layer for tests. Production code registers *named failpoints* at the
// places where I/O can fail — a write syscall, a rename, a stream read —
// and tests *arm* those points with a trigger policy: fail the Nth call,
// fail after N bytes have passed, return a short write, or silently
// corrupt a byte. Unarmed points are a single atomic load, so threading
// failpoints through hot paths costs nothing in production.
//
// Naming scheme (see DESIGN.md "Testing & fault injection"): points are
// named `<package>/<operation>` with an optional `:<target>` suffix for
// per-file or per-stream variants, e.g. `record/save:commands.dv` or
// `compress/writer`.
//
// Typical test usage:
//
//	failpoint.Arm("atomicfile/write", failpoint.Policy{Mode: failpoint.ModeError, AfterBytes: 4096})
//	defer failpoint.Reset()
//	err := store.Save(dir) // fails once 4 KiB have been written
package failpoint

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// ErrInjected is the base error every injected failure wraps, so tests
// can assert errors.Is(err, failpoint.ErrInjected) through any number of
// fmt.Errorf("%w") layers in the production path.
var ErrInjected = errors.New("failpoint: injected failure")

// Mode selects what happens when an armed point triggers.
type Mode int

const (
	// ModeError returns an injected error from the call (the default).
	ModeError Mode = iota
	// ModeShortWrite makes a wrapped Writer report fewer bytes written
	// than requested together with io.ErrShortWrite; on a wrapped Reader
	// it truncates the stream (premature io.EOF).
	ModeShortWrite
	// ModeCorrupt silently flips one bit in the data passing through a
	// wrapped Writer or Reader and then continues normally — the
	// downstream integrity checks (CRCs, magic sniffing) must catch it.
	// Inject calls treat ModeCorrupt as a no-op.
	ModeCorrupt
)

// Policy is a trigger rule for an armed failpoint.
type Policy struct {
	// Mode selects the failure behaviour (default ModeError).
	Mode Mode
	// Nth triggers on the Nth evaluation of the point, 1-based; 0 or 1
	// trigger on the first. Ignored when AfterBytes is set.
	Nth int
	// AfterBytes triggers a wrapped Writer/Reader once this many bytes
	// have passed through the point. The call that crosses the boundary
	// transfers bytes up to it and then fails (or corrupts the byte at
	// the boundary under ModeCorrupt).
	AfterBytes int64
	// Err replaces the default injected error; it is still wrapped so
	// errors.Is(err, ErrInjected) keeps holding.
	Err error
}

// String renders the policy compactly (e.g. for subtest names):
// "error", "short@nth2", "corrupt@64b".
func (p Policy) String() string {
	var mode string
	switch p.Mode {
	case ModeError:
		mode = "error"
	case ModeShortWrite:
		mode = "short"
	case ModeCorrupt:
		mode = "corrupt"
	default:
		mode = fmt.Sprintf("mode%d", int(p.Mode))
	}
	switch {
	case p.AfterBytes > 0:
		return fmt.Sprintf("%s@%db", mode, p.AfterBytes)
	case p.Nth > 1:
		return fmt.Sprintf("%s@nth%d", mode, p.Nth)
	default:
		return mode
	}
}

type point struct {
	mu      sync.Mutex
	pol     Policy
	calls   int64 // evaluations since arming
	bytes   int64 // bytes passed through wrapped streams
	fired   int64 // times the point triggered
	tripped bool  // sticky error state (a failed disk stays failed)
}

var (
	regMu  sync.RWMutex
	points = map[string]*point{}
	// armed counts armed points; the zero check is the production fast
	// path for every Inject/Write/Read evaluation.
	armed atomic.Int32
)

// Arm activates the named failpoint with a policy, replacing any prior
// arming (and resetting its counters).
func Arm(name string, p Policy) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = &point{pol: p}
}

// Disarm deactivates the named failpoint; a no-op if it is not armed.
func Disarm(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every failpoint. Tests that arm anything should
// `defer failpoint.Reset()`.
func Reset() {
	regMu.Lock()
	defer regMu.Unlock()
	armed.Add(-int32(len(points)))
	points = map[string]*point{}
}

// Fired reports how many times the named point has triggered since it
// was armed; 0 if not armed.
func Fired(name string) int64 {
	if pt := lookup(name); pt != nil {
		pt.mu.Lock()
		defer pt.mu.Unlock()
		return pt.fired
	}
	return 0
}

// Calls reports how many times the named point has been evaluated since
// it was armed; 0 if not armed. A zero count after the operation under
// test means the point name does not match any injection site.
func Calls(name string) int64 {
	if pt := lookup(name); pt != nil {
		pt.mu.Lock()
		defer pt.mu.Unlock()
		return pt.calls
	}
	return 0
}

func lookup(name string) *point {
	if armed.Load() == 0 {
		return nil
	}
	regMu.RLock()
	defer regMu.RUnlock()
	return points[name]
}

func (pt *point) errFor(name string) error {
	if pt.pol.Err != nil {
		return fmt.Errorf("%s: %w: %w", name, ErrInjected, pt.pol.Err)
	}
	return fmt.Errorf("%s: %w", name, ErrInjected)
}

// Inject evaluates a call-based failpoint: nil unless the point is armed
// and its policy triggers on this call. Once triggered, the point keeps
// failing every later call until disarmed (a failed disk stays failed).
func Inject(name string) error {
	pt := lookup(name)
	if pt == nil {
		return nil
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	pt.calls++
	if pt.pol.Mode == ModeCorrupt {
		return nil // corruption only makes sense on a byte stream
	}
	if !pt.tripped {
		n := int64(pt.pol.Nth)
		if n <= 1 {
			n = 1
		}
		if pt.calls < n {
			return nil
		}
		pt.tripped = true
	}
	pt.fired++
	return pt.errFor(name)
}

// Writer wraps w so the named failpoint can fail, truncate, or corrupt
// its writes. When no failpoint at all is armed, w is returned unchanged,
// so production paths pay a single atomic load at wrap time.
func Writer(name string, w io.Writer) io.Writer {
	if armed.Load() == 0 {
		return w
	}
	return &failWriter{name: name, w: w}
}

type failWriter struct {
	name string
	w    io.Writer
}

func (fw *failWriter) Write(p []byte) (int, error) {
	pt := lookup(fw.name)
	if pt == nil {
		return fw.w.Write(p)
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	pt.calls++
	trigger, off := pt.trigger(len(p))
	if !trigger {
		pt.bytes += int64(len(p))
		return fw.w.Write(p)
	}
	pt.fired++
	switch pt.pol.Mode {
	case ModeCorrupt:
		// Flip one bit at the trigger offset and carry on; later writes
		// pass through clean (tripped stays set so it corrupts once).
		buf := append([]byte(nil), p...)
		if len(buf) > 0 {
			if off >= len(buf) {
				off = len(buf) - 1
			}
			buf[off] ^= 0x01
		}
		pt.bytes += int64(len(p))
		return fw.w.Write(buf)
	case ModeShortWrite:
		n, err := fw.w.Write(p[:off])
		pt.bytes += int64(n)
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	default:
		n, err := fw.w.Write(p[:off])
		pt.bytes += int64(n)
		if err != nil {
			return n, err
		}
		return n, pt.errFor(fw.name)
	}
}

// trigger decides, under pt.mu, whether an n-byte transfer fires the
// point and at which offset within the buffer. ModeCorrupt fires exactly
// once; the error modes stay tripped forever.
func (pt *point) trigger(n int) (bool, int) {
	if pt.tripped {
		if pt.pol.Mode == ModeCorrupt {
			return false, 0
		}
		return true, 0
	}
	if pt.pol.AfterBytes > 0 {
		boundary := pt.pol.AfterBytes - pt.bytes
		if boundary > int64(n) {
			return false, 0
		}
		pt.tripped = true
		off := int(boundary)
		if off < 0 {
			off = 0
		}
		return true, off
	}
	nth := int64(pt.pol.Nth)
	if nth <= 1 {
		nth = 1
	}
	if pt.calls < nth {
		return false, 0
	}
	pt.tripped = true
	return true, n / 2
}

// Reader wraps r so the named failpoint can fail, truncate, or corrupt
// its reads. When no failpoint at all is armed, r is returned unchanged.
func Reader(name string, r io.Reader) io.Reader {
	if armed.Load() == 0 {
		return r
	}
	return &failReader{name: name, r: r}
}

type failReader struct {
	name string
	r    io.Reader
}

func (fr *failReader) Read(p []byte) (int, error) {
	pt := lookup(fr.name)
	if pt == nil {
		return fr.r.Read(p)
	}
	n, err := fr.r.Read(p)
	pt.mu.Lock()
	defer pt.mu.Unlock()
	pt.calls++
	trigger, off := pt.trigger(n)
	if !trigger {
		pt.bytes += int64(n)
		return n, err
	}
	pt.fired++
	switch pt.pol.Mode {
	case ModeCorrupt:
		if n > 0 {
			if off >= n {
				off = n - 1
			}
			p[off] ^= 0x01
		}
		pt.bytes += int64(n)
		return n, err
	case ModeShortWrite:
		// Truncate the stream: deliver bytes up to the boundary, then a
		// premature end-of-stream that decoders must treat as corruption.
		pt.bytes += int64(off)
		return off, io.EOF
	default:
		pt.bytes += int64(off)
		return off, pt.errFor(fr.name)
	}
}
