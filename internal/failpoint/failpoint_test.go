package failpoint

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestInjectUnarmedIsNil(t *testing.T) {
	if err := Inject("nothing/armed"); err != nil {
		t.Fatalf("unarmed inject = %v", err)
	}
}

func TestInjectNth(t *testing.T) {
	defer Reset()
	Arm("p/nth", Policy{Nth: 3})
	for i := 1; i <= 2; i++ {
		if err := Inject("p/nth"); err != nil {
			t.Fatalf("call %d failed early: %v", i, err)
		}
	}
	err := Inject("p/nth")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd call = %v, want ErrInjected", err)
	}
	// Sticky: later calls keep failing.
	if err := Inject("p/nth"); !errors.Is(err, ErrInjected) {
		t.Fatalf("4th call = %v, want sticky failure", err)
	}
	if got := Fired("p/nth"); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
	if got := Calls("p/nth"); got != 4 {
		t.Fatalf("Calls = %d, want 4", got)
	}
}

func TestInjectCustomErr(t *testing.T) {
	defer Reset()
	sentinel := errors.New("disk on fire")
	Arm("p/custom", Policy{Err: sentinel})
	err := Inject("p/custom")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want both ErrInjected and sentinel", err)
	}
	if !strings.Contains(err.Error(), "p/custom") {
		t.Fatalf("err %q does not name the failpoint", err)
	}
}

func TestDisarmAndReset(t *testing.T) {
	Arm("p/a", Policy{})
	Arm("p/b", Policy{})
	Disarm("p/a")
	if err := Inject("p/a"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if err := Inject("p/b"); err == nil {
		t.Fatal("armed point did not fire")
	}
	Reset()
	if err := Inject("p/b"); err != nil {
		t.Fatalf("reset point fired: %v", err)
	}
	if armed.Load() != 0 {
		t.Fatalf("armed count %d after Reset", armed.Load())
	}
}

func TestWriterUnarmedPassthrough(t *testing.T) {
	var buf bytes.Buffer
	w := Writer("p/w", &buf)
	if w != io.Writer(&buf) {
		t.Fatal("Writer should return the underlying writer when nothing is armed")
	}
}

func TestWriterAfterBytes(t *testing.T) {
	defer Reset()
	Arm("p/wb", Policy{AfterBytes: 10})
	var buf bytes.Buffer
	w := Writer("p/wb", &buf)
	if n, err := w.Write(make([]byte, 6)); n != 6 || err != nil {
		t.Fatalf("first write = %d, %v", n, err)
	}
	n, err := w.Write(make([]byte, 6))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write err = %v", err)
	}
	if n != 4 {
		t.Fatalf("crossing write wrote %d bytes, want 4 (up to the boundary)", n)
	}
	if buf.Len() != 10 {
		t.Fatalf("underlying got %d bytes, want 10", buf.Len())
	}
	// Sticky failure.
	if _, err := w.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trip write = %v", err)
	}
}

func TestWriterShortWrite(t *testing.T) {
	defer Reset()
	Arm("p/ws", Policy{Mode: ModeShortWrite, Nth: 2})
	var buf bytes.Buffer
	w := Writer("p/ws", &buf)
	if _, err := w.Write(make([]byte, 8)); err != nil {
		t.Fatalf("first write: %v", err)
	}
	n, err := w.Write(make([]byte, 8))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want io.ErrShortWrite", err)
	}
	if n >= 8 {
		t.Fatalf("short write reported %d of 8 bytes", n)
	}
}

func TestWriterCorrupt(t *testing.T) {
	defer Reset()
	Arm("p/wc", Policy{Mode: ModeCorrupt, AfterBytes: 3})
	var buf bytes.Buffer
	w := Writer("p/wc", &buf)
	data := []byte{0, 0, 0, 0, 0, 0}
	if n, err := w.Write(data); n != 6 || err != nil {
		t.Fatalf("corrupting write = %d, %v (corruption must be silent)", n, err)
	}
	if n, err := w.Write(data); n != 6 || err != nil {
		t.Fatalf("post-corruption write = %d, %v", n, err)
	}
	got := buf.Bytes()
	want := append([]byte{0, 0, 0, 1, 0, 0}, data...)
	if !bytes.Equal(got, want) {
		t.Fatalf("stream = %v, want one flipped bit at offset 3: %v", got, want)
	}
	if Fired("p/wc") != 1 {
		t.Fatalf("Fired = %d, want exactly one corruption", Fired("p/wc"))
	}
}

func TestReaderAfterBytes(t *testing.T) {
	defer Reset()
	Arm("p/rb", Policy{AfterBytes: 4})
	r := Reader("p/rb", bytes.NewReader(make([]byte, 16)))
	buf := make([]byte, 16)
	n, err := r.Read(buf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v", err)
	}
	if n != 4 {
		t.Fatalf("read %d bytes before failing, want 4", n)
	}
}

func TestReaderTruncates(t *testing.T) {
	defer Reset()
	Arm("p/rt", Policy{Mode: ModeShortWrite, AfterBytes: 4})
	r := Reader("p/rt", bytes.NewReader(make([]byte, 16)))
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("truncation must look like clean EOF, got %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("truncated stream delivered %d bytes, want 4", len(got))
	}
}

func TestReaderCorrupt(t *testing.T) {
	defer Reset()
	Arm("p/rc", Policy{Mode: ModeCorrupt, AfterBytes: 2})
	src := []byte{0, 0, 0, 0}
	r := Reader("p/rc", bytes.NewReader(src))
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("corrupt read err = %v", err)
	}
	if !bytes.Equal(got, []byte{0, 0, 1, 0}) {
		t.Fatalf("read %v, want bit flipped at offset 2", got)
	}
}
