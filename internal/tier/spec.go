package tier

import (
	"fmt"
	"strconv"
	"strings"

	"dejaview/internal/simclock"
)

// ParseAge parses a human age spec like "90s", "15m", "36h", or "2d"
// into simulated time.
func ParseAge(s string) (simclock.Time, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("tier: empty age")
	}
	unit := simclock.Second
	switch s[len(s)-1] {
	case 's':
		s = s[:len(s)-1]
	case 'm':
		unit, s = simclock.Minute, s[:len(s)-1]
	case 'h':
		unit, s = simclock.Hour, s[:len(s)-1]
	case 'd':
		unit, s = 24*simclock.Hour, s[:len(s)-1]
	}
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("tier: bad age %q", s)
	}
	return simclock.Time(n) * unit, nil
}

// ParseTiers parses a thinning spec like "1h:10,24h:60" — comma-
// separated <min-age>:<keep-every> rules — into a tier list for Policy.
func ParseTiers(spec string) ([]Tier, error) {
	var tiers []Tier
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		age, every, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("tier: rule %q: want <min-age>:<keep-every>", part)
		}
		minAge, err := ParseAge(age)
		if err != nil {
			return nil, err
		}
		ke, err := strconv.ParseUint(strings.TrimSpace(every), 10, 32)
		if err != nil || ke == 0 {
			return nil, fmt.Errorf("tier: rule %q: keep-every must be a positive integer", part)
		}
		tiers = append(tiers, Tier{MinAge: minAge, KeepEvery: ke})
	}
	return tiers, nil
}
