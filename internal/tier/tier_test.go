package tier_test

import (
	"reflect"
	"testing"

	"dejaview/internal/simclock"
	"dejaview/internal/tier"
	"dejaview/internal/vexec"
)

const sec = simclock.Second

// fakeChain synthesizes n checkpoint infos: counter i at time i seconds,
// each 100 logical bytes.
func fakeChain(n int) []vexec.ImageInfo {
	infos := make([]vexec.ImageInfo, 0, n)
	for i := 1; i <= n; i++ {
		infos = append(infos, vexec.ImageInfo{
			Counter:  uint64(i),
			Time:     simclock.Time(i) * sec,
			MemBytes: 100,
		})
	}
	return infos
}

func keptCounters(pl tier.Plan) []uint64 {
	var out []uint64
	for i := uint64(1); i <= uint64(len(pl.Keep)); i++ {
		if pl.Keep[i] {
			out = append(out, i)
		}
	}
	return out
}

func TestPlanTierThinning(t *testing.T) {
	p := tier.Policy{Tiers: []tier.Tier{{MinAge: 6 * sec, KeepEvery: 3}}}
	pl := p.Plan(fakeChain(12), 12*sec)
	// Ages 6s+ are counters 1..6: only multiples of 3 survive there.
	want := []uint64{3, 6, 7, 8, 9, 10, 11, 12}
	if got := keptCounters(pl); !reflect.DeepEqual(got, want) {
		t.Errorf("kept %v, want %v", got, want)
	}
	if pl.DropRecordBefore != 0 {
		t.Errorf("thinning alone set DropRecordBefore=%v", pl.DropRecordBefore)
	}
	if pl.DropBytes != 400 {
		t.Errorf("DropBytes = %d, want 400", pl.DropBytes)
	}
	if len(pl.PerTier) != 2 || pl.PerTier[1].Seen != 6 || pl.PerTier[1].Kept != 2 {
		t.Errorf("per-tier stats %+v", pl.PerTier)
	}
}

func TestPlanMaxAge(t *testing.T) {
	p := tier.Policy{MaxAge: 6 * sec}
	pl := p.Plan(fakeChain(12), 12*sec)
	// Strictly older than 6s means counters 1..5 go.
	want := []uint64{6, 7, 8, 9, 10, 11, 12}
	if got := keptCounters(pl); !reflect.DeepEqual(got, want) {
		t.Errorf("kept %v, want %v", got, want)
	}
	if pl.DropRecordBefore != 6*sec {
		t.Errorf("DropRecordBefore = %v, want 6s", pl.DropRecordBefore)
	}
}

func TestPlanMaxBytes(t *testing.T) {
	p := tier.Policy{MaxBytes: 450}
	pl := p.Plan(fakeChain(12), 12*sec)
	// 12 checkpoints at 100 bytes each: evict oldest until ≤450 ⇒ keep 4.
	want := []uint64{9, 10, 11, 12}
	if got := keptCounters(pl); !reflect.DeepEqual(got, want) {
		t.Errorf("kept %v, want %v", got, want)
	}
	if pl.KeepBytes != 400 {
		t.Errorf("KeepBytes = %d", pl.KeepBytes)
	}
	if pl.DropRecordBefore != 9*sec {
		t.Errorf("DropRecordBefore = %v, want 9s", pl.DropRecordBefore)
	}
}

func TestPlanNewestSurvivesEverything(t *testing.T) {
	p := tier.Policy{
		Tiers:    []tier.Tier{{MinAge: 0, KeepEvery: 1000}},
		MaxAge:   1, // everything is older
		MaxBytes: 1, // nothing fits
	}
	pl := p.Plan(fakeChain(5), 100*sec)
	if got := keptCounters(pl); !reflect.DeepEqual(got, []uint64{5}) {
		t.Errorf("kept %v, want just the newest", got)
	}
}

func TestPlanDeterministic(t *testing.T) {
	p := tier.DefaultPolicy()
	p.MaxBytes = 300
	infos := fakeChain(40)
	a := p.Plan(infos, 40*sec+2*simclock.Hour)
	b := p.Plan(infos, 40*sec+2*simclock.Hour)
	if !reflect.DeepEqual(a, b) {
		t.Error("two plans over the same inputs diverge")
	}
}

func TestPlanEmpty(t *testing.T) {
	pl := tier.DefaultPolicy().Plan(nil, 0)
	if len(pl.Drop) != 0 || pl.DropRecordBefore != 0 {
		t.Errorf("empty plan wants to do work: %+v", pl)
	}
}

func TestParseAge(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want simclock.Time
	}{
		{"90s", 90 * sec},
		{"15m", 15 * simclock.Minute},
		{"36h", 36 * simclock.Hour},
		{"2d", 48 * simclock.Hour},
		{"7", 7 * sec},
	} {
		got, err := tier.ParseAge(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseAge(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "h", "-3s", "1.5h"} {
		if _, err := tier.ParseAge(bad); err == nil {
			t.Errorf("ParseAge(%q) accepted", bad)
		}
	}
}

func TestParseTiers(t *testing.T) {
	got, err := tier.ParseTiers("1h:10, 24h:60")
	if err != nil {
		t.Fatal(err)
	}
	want := []tier.Tier{
		{MinAge: simclock.Hour, KeepEvery: 10},
		{MinAge: 24 * simclock.Hour, KeepEvery: 60},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseTiers = %+v, want %+v", got, want)
	}
	for _, bad := range []string{"1h", "1h:0", "1h:x", ":5"} {
		if _, err := tier.ParseTiers(bad); err == nil {
			t.Errorf("ParseTiers(%q) accepted", bad)
		}
	}
}
