package tier

// RunLoop compacts every directory returned by dirs once per tick until
// ticks is closed. The tick source is a plain channel so the loop stays
// wallclock-free: callers (dvserve's fleet maintenance goroutine, tests)
// own the cadence and can drive it from a timer, a signal, or a script.
// report, when non-nil, receives each archive's outcome; errors on one
// archive never stop the sweep.
func RunLoop(ticks <-chan struct{}, dirs func() []string, p Policy, report func(dir string, res Result, err error)) {
	for range ticks {
		for _, d := range dirs() {
			res, err := Compact(d, p)
			if report != nil {
				report(d, res, err)
			}
		}
	}
}
