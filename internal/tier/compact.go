package tier

import (
	"compress/flate"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"dejaview/internal/atomicfile"
	"dejaview/internal/compress"
	"dejaview/internal/core"
	"dejaview/internal/failpoint"
	"dejaview/internal/obs"
	"dejaview/internal/record"
	"dejaview/internal/vexec"
)

var (
	obsCompactions        = obs.Default.Counter("tier.compactions")
	obsCheckpointsDropped = obs.Default.Counter("tier.checkpoints_dropped")
	obsBytesReclaimed     = obs.Default.Counter("tier.bytes_reclaimed")
)

// manifestFile is the compaction commit record. Its presence means a
// compaction staged a full set of rewritten streams and intends to
// rename them into place; Recover rolls the rename forward. Its absence
// means any *.new strays are pre-commit litter and are swept.
const manifestFile = "compact.manifest"

type manifestEntry struct {
	// Src and Dst are archive-relative names; Src is the fully staged
	// rewrite, Dst the live stream it replaces.
	Src string `json:"src"`
	Dst string `json:"dst"`
	Dir bool   `json:"dir,omitempty"`
}

type manifest struct {
	Entries []manifestEntry `json:"entries"`
}

// Result reports what one Compact call did to an archive.
type Result struct {
	// Plan is the policy decision the compaction executed.
	Plan Plan
	// Dropped is the number of checkpoint images removed from the chain.
	Dropped int
	// RecordDropped is the number of display-record keyframe entries
	// truncated from the front of the record.
	RecordDropped int
	// Recompressed reports whether streams were rewritten with the
	// strongest codec.
	Recompressed bool
	// Skipped reports that the archive already satisfied the policy and
	// nothing was rewritten.
	Skipped bool
	// BytesBefore and BytesAfter are the archive directory's on-disk
	// sizes around the compaction.
	BytesBefore, BytesAfter int64
}

// Reclaimed is the on-disk space the compaction freed (zero when the
// rewrite grew the archive, e.g. a raw fixture recompressed poorly).
func (r Result) Reclaimed() int64 {
	if d := r.BytesBefore - r.BytesAfter; d > 0 {
		return d
	}
	return 0
}

// Compact applies policy p to the archive at dir: recover any
// interrupted compaction, plan deterministically, thin the checkpoint
// chain, truncate unreachable record history, rewrite the image and
// record streams (with the strongest codec when p.Recompress), and
// commit the rewrites through a persisted manifest so a crash at any
// point either keeps the old streams or completes the new ones — never
// a mix that loses a retained snapshot.
//
// The archive is opened lazily, so pages owned only by dropped
// checkpoints are never decoded: the rewrite demand-loads just the
// retained chain's blocks.
func Compact(dir string, p Policy) (Result, error) {
	var res Result
	if err := failpoint.Inject("tier/compact"); err != nil {
		return res, fmt.Errorf("tier: compact %s: %w", dir, err)
	}
	if err := Recover(dir); err != nil {
		return res, fmt.Errorf("tier: recover %s: %w", dir, err)
	}
	res.BytesBefore = dirSize(dir)

	a, err := core.OpenArchive(dir)
	if err != nil {
		return res, fmt.Errorf("tier: open %s: %w", dir, err)
	}
	//lint:ignore dropped-error read-side archive handle; the rewrite is staged, verified, and committed separately
	defer a.Close()

	if err := failpoint.Inject("tier/plan"); err != nil {
		return res, fmt.Errorf("tier: plan %s: %w", dir, err)
	}
	pl := p.Plan(a.Checkpointer().ImageInfos(), a.End)
	res.Plan = pl

	needRecompress := p.Recompress && !imagesUseCodec(filepath.Join(dir, core.ArchiveImagesFile), compress.CodecFlate)
	if len(pl.Drop) == 0 && pl.DropRecordBefore == 0 && !needRecompress {
		res.Skipped = true
		res.BytesAfter = res.BytesBefore
		return res, nil
	}

	if len(pl.Drop) > 0 {
		res.Dropped = a.Checkpointer().Retain(func(c uint64) bool { return pl.Keep[c] })
	}
	if pl.DropRecordBefore > 0 {
		n, err := a.Store.TruncateBefore(pl.DropRecordBefore)
		if err != nil {
			return res, fmt.Errorf("tier: truncate record %s: %w", dir, err)
		}
		res.RecordDropped = n
	}

	imgOpts := compress.Options{}
	if p.Recompress {
		imgOpts = compress.Options{Codec: compress.CodecFlate, Level: flate.BestCompression}
		a.Store.SetCompression(imgOpts)
		res.Recompressed = true
	}

	// Stage the full set of rewrites as *.new siblings. Until the
	// manifest lands, the live streams are untouched and the stage can
	// be discarded wholesale.
	var staged []string
	committed := false
	defer func() {
		if committed {
			return
		}
		for _, s := range staged {
			os.RemoveAll(filepath.Join(dir, s))
		}
	}()

	if err := stageImages(dir, a, imgOpts); err != nil {
		return res, err
	}
	staged = append(staged, core.ArchiveImagesFile+".new")

	if err := failpoint.Inject("tier/rewrite:" + core.ArchiveRecordDir); err != nil {
		return res, fmt.Errorf("tier: rewrite record %s: %w", dir, err)
	}
	if err := a.Store.Save(filepath.Join(dir, core.ArchiveRecordDir+".new")); err != nil {
		return res, fmt.Errorf("tier: rewrite record %s: %w", dir, err)
	}
	staged = append(staged, core.ArchiveRecordDir+".new")

	// Verify the stage decodes before the point of no return: a bit
	// flipped on the way to disk (or a buggy rewrite) must fail the
	// compaction while the old streams are still intact, not surface as
	// a CRC error after they were replaced.
	if err := verifyStaged(dir); err != nil {
		return res, fmt.Errorf("tier: verify stage %s: %w", dir, err)
	}

	m := manifest{Entries: []manifestEntry{
		{Src: core.ArchiveImagesFile + ".new", Dst: core.ArchiveImagesFile},
		{Src: core.ArchiveRecordDir + ".new", Dst: core.ArchiveRecordDir, Dir: true},
	}}
	mb, err := json.Marshal(m)
	if err != nil {
		return res, err
	}
	if err := atomicfile.WriteFile(filepath.Join(dir, manifestFile), mb); err != nil {
		return res, fmt.Errorf("tier: commit manifest %s: %w", dir, err)
	}
	// Point of no return: the manifest is durable, so Recover completes
	// the commit even if we crash inside applyManifest.
	committed = true
	if err := applyManifest(dir, m.Entries); err != nil {
		return res, fmt.Errorf("tier: commit %s: %w", dir, err)
	}
	os.Remove(filepath.Join(dir, manifestFile))

	res.BytesAfter = dirSize(dir)
	obsCompactions.Inc()
	obsCheckpointsDropped.Add(uint64(res.Dropped))
	obsBytesReclaimed.Add(uint64(res.Reclaimed()))
	return res, nil
}

// stageImages rewrites the checkpoint image chain to images.dv.new,
// demand-loading retained pages through the archive's lazy open.
func stageImages(dir string, a *core.Archive, o compress.Options) error {
	if err := failpoint.Inject("tier/rewrite:" + core.ArchiveImagesFile); err != nil {
		return fmt.Errorf("tier: rewrite images %s: %w", dir, err)
	}
	f, err := atomicfile.Create(filepath.Join(dir, core.ArchiveImagesFile+".new"))
	if err != nil {
		return fmt.Errorf("tier: rewrite images %s: %w", dir, err)
	}
	if err := a.Checkpointer().SaveImagesOptions(f, o); err != nil {
		f.Abort()
		return fmt.Errorf("tier: rewrite images %s: %w", dir, err)
	}
	if err := f.Commit(); err != nil {
		return fmt.Errorf("tier: rewrite images %s: %w", dir, err)
	}
	return nil
}

// verifyStaged fully decodes the staged rewrites — frame CRCs and
// structural validation both run on this path — so only a
// proven-readable stage ever gets a commit manifest.
func verifyStaged(dir string) error {
	if _, err := record.Open(filepath.Join(dir, core.ArchiveRecordDir+".new")); err != nil {
		return err
	}
	f, err := os.Open(filepath.Join(dir, core.ArchiveImagesFile+".new"))
	if err != nil {
		return err
	}
	//lint:ignore dropped-error read-only verification open; a Close error cannot lose data
	defer f.Close()
	ck := vexec.NewArchiveCheckpointer(vexec.DefaultCostModel(), 100)
	return ck.LoadImages(f)
}

// applyManifest renames staged rewrites into place. Entries whose
// source is already gone were applied by a previous attempt and are
// skipped, so the apply is idempotent under crash/retry.
func applyManifest(dir string, entries []manifestEntry) error {
	for _, e := range entries {
		if err := failpoint.Inject("tier/commit:" + e.Dst); err != nil {
			return err
		}
		src := filepath.Join(dir, e.Src)
		if _, err := os.Stat(src); os.IsNotExist(err) {
			continue
		}
		dst := filepath.Join(dir, e.Dst)
		if err := os.RemoveAll(dst); err != nil {
			return err
		}
		if err := os.Rename(src, dst); err != nil {
			return err
		}
	}
	return nil
}

// Recover finishes or discards an interrupted compaction at dir. With a
// committed manifest present the staged renames are rolled forward;
// without one, any *.new stages and atomicfile temporaries are
// pre-commit litter and are swept. Safe (and cheap) to call on a clean
// archive; Compact calls it first thing.
func Recover(dir string) error {
	mpath := filepath.Join(dir, manifestFile)
	b, err := os.ReadFile(mpath)
	switch {
	case err == nil:
		var m manifest
		if json.Unmarshal(b, &m) != nil {
			// A manifest is written atomically, so garbage here means it
			// never represented a complete stage: roll back.
			os.Remove(mpath)
		} else {
			if err := applyManifest(dir, m.Entries); err != nil {
				return err
			}
			os.Remove(mpath)
		}
	case !os.IsNotExist(err):
		return err
	}
	for _, d := range []string{dir, filepath.Join(dir, core.ArchiveRecordDir)} {
		ents, err := os.ReadDir(d)
		if err != nil {
			continue
		}
		for _, e := range ents {
			name := e.Name()
			if strings.HasSuffix(name, ".new") || strings.Contains(name, ".tmp") {
				os.RemoveAll(filepath.Join(d, name))
			}
		}
	}
	return nil
}

// imagesUseCodec reports whether the stream at path is a frame whose
// header records codec id — reading only the 8-byte header, so Compact
// can skip archives that are already recompressed.
func imagesUseCodec(path string, id uint8) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	//lint:ignore dropped-error read-only 8-byte header probe; a Close error cannot lose data
	defer f.Close()
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return false
	}
	got, err := compress.FrameCodec(hdr)
	return err == nil && got == id
}

// dirSize is the archive's total on-disk size (best effort: unreadable
// entries count as zero).
func dirSize(dir string) int64 {
	var total int64
	filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if fi, err := d.Info(); err == nil {
			total += fi.Size()
		}
		return nil
	})
	return total
}
