// Package tier manages the lifecycle of session archives: age-tiered
// checkpoint thinning, retention quotas, cold-data recompression, and
// crash-safe application of all three (see compact.go). The paper keeps
// a full day of history in a few GB by compressing everything it logs;
// tier is what keeps multi-day archives bounded after that — recent
// history stays dense (revive anywhere), old history thins to periodic
// checkpoints, and the oldest falls off the end of the configured
// retention window.
//
// The policy layer below is pure: Plan maps checkpoint metadata to a
// keep/drop decision deterministically, so the same archive and policy
// always plan the same compaction (and a crashed compaction re-plans
// identically on retry).
package tier

import (
	"fmt"
	"sort"

	"dejaview/internal/simclock"
	"dejaview/internal/vexec"
)

// A Tier is one thinning rule: checkpoints at least MinAge old keep
// only counters divisible by KeepEvery. Counters (not positions) make
// the rule stable: a checkpoint kept by one compaction is kept by every
// later one until it ages into a sparser tier.
type Tier struct {
	// MinAge is the age (relative to the archive's end time) at which
	// this tier starts applying.
	MinAge simclock.Time
	// KeepEvery keeps every KeepEvery-th checkpoint counter; 1 keeps
	// everything.
	KeepEvery uint64
}

// Policy configures one archive's lifecycle.
type Policy struct {
	// Tiers are the age-ordered thinning rules. Checkpoints younger
	// than every tier's MinAge are all kept.
	Tiers []Tier
	// MaxAge, when set, evicts checkpoints older than this outright
	// (and truncates the display record before the oldest survivor).
	MaxAge simclock.Time
	// MaxBytes, when set, evicts oldest checkpoints until the retained
	// chain's logical size fits the quota. The newest checkpoint is
	// never evicted.
	MaxBytes int64
	// Recompress rewrites streams with the strongest codec (flate at
	// best compression) instead of the adaptive default — cold archives
	// trade decode speed for space.
	Recompress bool
}

// DefaultPolicy thins to every 10th checkpoint after an hour and every
// 60th after a day, with recompression and no hard retention limit.
func DefaultPolicy() Policy {
	return Policy{
		Tiers: []Tier{
			{MinAge: simclock.Hour, KeepEvery: 10},
			{MinAge: 24 * simclock.Hour, KeepEvery: 60},
		},
		Recompress: true,
	}
}

// TierStat is one tier's share of a plan (index 0 is the implicit
// keep-everything tier for the youngest checkpoints).
type TierStat struct {
	MinAge    simclock.Time
	KeepEvery uint64
	Seen      int
	Kept      int
}

// Plan is a deterministic compaction decision over one archive.
type Plan struct {
	// Keep reports whether a checkpoint counter survives.
	Keep map[uint64]bool
	// Drop lists the dropped counters in ascending order.
	Drop []uint64
	// DropRecordBefore, when non-zero, is the time before which display
	// record history is unreachable (older than every retained
	// checkpoint after an age/quota eviction) and should be truncated.
	DropRecordBefore simclock.Time
	// KeepBytes is the logical size (MemBytes+MetaBytes) of the
	// retained images.
	KeepBytes int64
	// DropBytes is the logical size of the dropped images — an upper
	// bound on reclaimable image bytes (shared pages may survive via a
	// retained descendant).
	DropBytes int64
	// PerTier breaks the decision down by tier for inspection tools.
	PerTier []TierStat
}

// Plan decides which checkpoints survive policy p for an archive whose
// session ended at end. infos must be in ascending counter order (as
// returned by Checkpointer.ImageInfos). The newest checkpoint always
// survives.
func (p Policy) Plan(infos []vexec.ImageInfo, end simclock.Time) Plan {
	tiers := append([]Tier(nil), p.Tiers...)
	sort.Slice(tiers, func(i, j int) bool { return tiers[i].MinAge < tiers[j].MinAge })
	pl := Plan{Keep: make(map[uint64]bool, len(infos))}
	pl.PerTier = make([]TierStat, len(tiers)+1)
	pl.PerTier[0] = TierStat{KeepEvery: 1}
	for i, t := range tiers {
		pl.PerTier[i+1] = TierStat{MinAge: t.MinAge, KeepEvery: t.KeepEvery}
	}
	if len(infos) == 0 {
		return pl
	}
	newest := infos[len(infos)-1].Counter

	evicted := false
	tierOf := make(map[uint64]int, len(infos))
	for _, in := range infos {
		age := end - in.Time
		ti := 0
		for i, t := range tiers {
			if age >= t.MinAge {
				ti = i + 1
			}
		}
		tierOf[in.Counter] = ti
		pl.PerTier[ti].Seen++
		keep := true
		if ti > 0 {
			if ke := tiers[ti-1].KeepEvery; ke > 1 && in.Counter%ke != 0 {
				keep = false
			}
		}
		if p.MaxAge > 0 && age > p.MaxAge {
			keep = false
			evicted = true
		}
		if in.Counter == newest {
			keep = true
		}
		pl.Keep[in.Counter] = keep
	}

	// Quota: evict oldest survivors until the retained logical size
	// fits. Oldest-first is deterministic and matches the paper's model
	// of history falling off the far end of the disk.
	if p.MaxBytes > 0 {
		var total int64
		for _, in := range infos {
			if pl.Keep[in.Counter] {
				total += in.MemBytes + in.MetaBytes
			}
		}
		for _, in := range infos {
			if total <= p.MaxBytes {
				break
			}
			if !pl.Keep[in.Counter] || in.Counter == newest {
				continue
			}
			pl.Keep[in.Counter] = false
			total -= in.MemBytes + in.MetaBytes
			evicted = true
		}
	}

	var oldestKept simclock.Time
	first := true
	for _, in := range infos {
		if pl.Keep[in.Counter] {
			pl.PerTier[tierOf[in.Counter]].Kept++
			pl.KeepBytes += in.MemBytes + in.MetaBytes
			if first || in.Time < oldestKept {
				oldestKept = in.Time
				first = false
			}
			continue
		}
		pl.Drop = append(pl.Drop, in.Counter)
		pl.DropBytes += in.MemBytes + in.MetaBytes
	}
	if evicted && !first {
		pl.DropRecordBefore = oldestKept
	}
	return pl
}

// String summarizes a plan for logs and dvgc output.
func (pl Plan) String() string {
	kept := 0
	for _, k := range pl.Keep {
		if k {
			kept++
		}
	}
	return fmt.Sprintf("keep %d drop %d (%d logical bytes reclaimable)", kept, len(pl.Drop), pl.DropBytes)
}
