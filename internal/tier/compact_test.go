package tier_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dejaview/internal/compress"
	"dejaview/internal/core"
	"dejaview/internal/e2e"
	"dejaview/internal/failpoint"
	"dejaview/internal/simclock"
	"dejaview/internal/tier"
)

// buildArchive scripts a deterministic session and saves it as an
// archive; the e2e scenarios advance the virtual clock one second per
// step, so checkpoint ages span a few seconds.
func buildArchive(t *testing.T) string {
	t.Helper()
	s, err := e2e.Build(e2e.Scenarios()[0], core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "arch")
	if err := s.SaveArchive(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// thinningPolicy drops roughly the older half of a seconds-scale
// session's checkpoints.
func thinningPolicy(t *testing.T, dir string) tier.Policy {
	t.Helper()
	a, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	infos := a.Checkpointer().ImageInfos()
	if len(infos) < 4 {
		t.Fatalf("scenario produced only %d checkpoints", len(infos))
	}
	mid := a.End - infos[len(infos)/2].Time
	return tier.Policy{
		Tiers:      []tier.Tier{{MinAge: mid, KeepEvery: 2}},
		Recompress: true,
	}
}

// forests fingerprints every checkpoint counter in keep by reviving it
// and serializing the process forest.
func forests(t *testing.T, dir string, keep func(uint64) bool) map[uint64]string {
	t.Helper()
	a, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	out := map[uint64]string{}
	for _, in := range a.Checkpointer().ImageInfos() {
		if keep != nil && !keep(in.Counter) {
			continue
		}
		rv, err := a.ReviveCheckpoint(in.Counter)
		if err != nil {
			t.Fatalf("revive %d: %v", in.Counter, err)
		}
		var lines []string
		for _, p := range rv.Container.Processes() {
			lines = append(lines, fmt.Sprintf("%d/%d %s threads=%d state=%v",
				p.PID(), p.PPID(), p.Name(), p.Threads(), p.State()))
		}
		sort.Strings(lines)
		out[in.Counter] = strings.Join(lines, "\n")
	}
	return out
}

func assertNoLitter(t *testing.T, dir string) {
	t.Helper()
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			t.Fatal(err)
			return err
		}
		name := d.Name()
		if strings.Contains(name, ".tmp") || strings.HasSuffix(name, ".new") ||
			name == "compact.manifest" {
			t.Errorf("litter left behind: %s", path)
		}
		return nil
	})
}

// TestCompactEquivalence: thinning an archive must leave every retained
// checkpoint reviving exactly as before, the record browsable, and the
// image stream recompressed with the strongest codec.
func TestCompactEquivalence(t *testing.T) {
	dir := buildArchive(t)
	p := thinningPolicy(t, dir)
	pl := planOf(t, dir, p)
	if len(pl.Drop) == 0 {
		t.Fatal("policy drops nothing; test is vacuous")
	}
	before := forests(t, dir, func(c uint64) bool { return pl.Keep[c] })
	browseBefore := browseHashes(t, dir)

	res, err := tier.Compact(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped || res.Dropped != len(pl.Drop) {
		t.Fatalf("result %+v, want %d dropped", res, len(pl.Drop))
	}
	assertNoLitter(t, dir)

	after := forests(t, dir, nil)
	if len(after) != len(before) {
		t.Fatalf("%d checkpoints after compaction, want %d", len(after), len(before))
	}
	for c, want := range before {
		if after[c] != want {
			t.Errorf("checkpoint %d revives differently after compaction", c)
		}
	}
	if got := browseHashes(t, dir); !equalU64(got, browseBefore) {
		t.Errorf("browse hashes changed: %v vs %v", got, browseBefore)
	}

	hdr, err := os.ReadFile(filepath.Join(dir, core.ArchiveImagesFile))
	if err != nil {
		t.Fatal(err)
	}
	if id, err := compress.FrameCodec(hdr[:8]); err != nil || id != compress.CodecFlate {
		t.Errorf("images codec after recompression = %d, %v; want flate", id, err)
	}
}

func planOf(t *testing.T, dir string, p tier.Policy) tier.Plan {
	t.Helper()
	a, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	return p.Plan(a.Checkpointer().ImageInfos(), a.End)
}

func browseHashes(t *testing.T, dir string) []uint64 {
	t.Helper()
	a, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var hs []uint64
	for _, num := range []simclock.Time{2, 3} {
		fb, err := a.Browse(a.End * num / 4)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, fb.Hash())
	}
	return hs
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCompactIdempotent: a second compaction under the same policy finds
// nothing to do.
func TestCompactIdempotent(t *testing.T) {
	dir := buildArchive(t)
	p := thinningPolicy(t, dir)
	if _, err := tier.Compact(dir, p); err != nil {
		t.Fatal(err)
	}
	res, err := tier.Compact(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Skipped {
		t.Errorf("second compaction did work: %+v", res)
	}
}

// TestCompactQuota: a byte quota evicts oldest checkpoints and truncates
// the unreachable record prefix, leaving a working archive.
func TestCompactQuota(t *testing.T) {
	dir := buildArchive(t)
	a, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	infos := a.Checkpointer().ImageInfos()
	var total int64
	for _, in := range infos {
		total += in.MemBytes + in.MetaBytes
	}
	a.Close()
	p := tier.Policy{MaxBytes: total / 2, Recompress: true}
	res, err := tier.Compact(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatalf("quota of half the bytes dropped nothing: %+v", res)
	}
	if res.Plan.DropRecordBefore == 0 {
		t.Error("eviction did not schedule record truncation")
	}
	assertNoLitter(t, dir)

	a2, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	left := a2.Checkpointer().ImageInfos()
	if len(left) != len(infos)-res.Dropped {
		t.Errorf("%d checkpoints left, want %d", len(left), len(infos)-res.Dropped)
	}
	if _, err := a2.ReviveCheckpoint(a2.Checkpoints()); err != nil {
		t.Errorf("newest checkpoint not revivable: %v", err)
	}
	if _, err := a2.Browse(a2.End); err != nil {
		t.Errorf("browse after truncation: %v", err)
	}
}

// TestCompactCrashMatrix arms every failure point a compaction crosses —
// plan, stage writes, manifest commit, renames — and checks the
// fail-closed invariant: after the failure plus a Recover, the archive
// opens, carries no litter, and every checkpoint the plan retains
// revives exactly as before the attempt. Failures before the manifest
// roll back to the original archive; failures after it roll forward to
// the compacted one — both keep the retained set intact.
func TestCompactCrashMatrix(t *testing.T) {
	src := buildArchive(t)
	points := []struct {
		name string
		pol  failpoint.Policy
	}{
		{"tier/compact", failpoint.Policy{}},
		{"tier/plan", failpoint.Policy{}},
		{"tier/rewrite:" + core.ArchiveImagesFile, failpoint.Policy{}},
		{"tier/rewrite:" + core.ArchiveRecordDir, failpoint.Policy{}},
		{"tier/commit:" + core.ArchiveImagesFile, failpoint.Policy{}},
		{"tier/commit:" + core.ArchiveRecordDir, failpoint.Policy{}},
		{"atomicfile/create", failpoint.Policy{Nth: 2}},
		{"atomicfile/write", failpoint.Policy{Mode: failpoint.ModeShortWrite, AfterBytes: 512}},
		{"atomicfile/write", failpoint.Policy{Mode: failpoint.ModeCorrupt, AfterBytes: 300}},
		{"atomicfile/rename", failpoint.Policy{Nth: 2}},
	}
	for _, fp := range points {
		t.Run(fp.name+"/"+fp.pol.String(), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "arch")
			copyTree(t, src, dir)
			p := thinningPolicy(t, dir)
			pl := planOf(t, dir, p)
			want := forests(t, dir, func(c uint64) bool { return pl.Keep[c] })

			failpoint.Arm(fp.name, fp.pol)
			_, err := tier.Compact(dir, p)
			failpoint.Disarm(fp.name)
			if err == nil {
				t.Fatal("armed compaction succeeded")
			}
			if err := tier.Recover(dir); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			assertNoLitter(t, dir)
			got := forests(t, dir, func(c uint64) bool { return pl.Keep[c] })
			if len(got) != len(want) {
				t.Fatalf("%d retained checkpoints after crash, want %d", len(got), len(want))
			}
			for c, w := range want {
				if got[c] != w {
					t.Errorf("checkpoint %d lost or changed by crashed compaction", c)
				}
			}
		})
	}
}

// TestRecoverRollsForward: a manifest left by a crash between commit
// renames is completed by Recover, not rolled back.
func TestRecoverRollsForward(t *testing.T) {
	dir := buildArchive(t)
	p := thinningPolicy(t, dir)
	// Crash after the images rename, before the record rename.
	failpoint.Arm("tier/commit:"+core.ArchiveRecordDir, failpoint.Policy{})
	_, err := tier.Compact(dir, p)
	failpoint.Disarm("tier/commit:" + core.ArchiveRecordDir)
	if err == nil {
		t.Fatal("armed compaction succeeded")
	}
	if _, err := os.Stat(filepath.Join(dir, "compact.manifest")); err != nil {
		t.Fatalf("manifest not durable at crash point: %v", err)
	}
	if err := tier.Recover(dir); err != nil {
		t.Fatal(err)
	}
	assertNoLitter(t, dir)
	// Rolled forward: the thinning is applied.
	a, err := core.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	kept := 0
	for range a.Checkpointer().ImageInfos() {
		kept++
	}
	wantKept := 0
	for _, k := range planKeeps(p, dir, t) {
		if k {
			wantKept++
		}
	}
	if kept != wantKept {
		t.Errorf("%d checkpoints after roll-forward, want %d", kept, wantKept)
	}
}

// planKeeps re-plans against the recovered archive; counter-stable rules
// keep the same set.
func planKeeps(p tier.Policy, dir string, t *testing.T) map[uint64]bool {
	t.Helper()
	return planOf(t, dir, p).Keep
}

// TestRecoverCleanArchive is a no-op on a healthy archive.
func TestRecoverCleanArchive(t *testing.T) {
	dir := buildArchive(t)
	before := forests(t, dir, nil)
	if err := tier.Recover(dir); err != nil {
		t.Fatal(err)
	}
	after := forests(t, dir, nil)
	if len(after) != len(before) {
		t.Errorf("Recover on clean archive changed checkpoint count")
	}
}

// TestRunLoop drives the background runner over two archives from a
// scripted tick channel.
func TestRunLoop(t *testing.T) {
	dirs := []string{buildArchive(t), buildArchive(t)}
	p := thinningPolicy(t, dirs[0])
	ticks := make(chan struct{}, 2)
	ticks <- struct{}{}
	ticks <- struct{}{}
	close(ticks)
	var results []tier.Result
	tier.RunLoop(ticks, func() []string { return dirs }, p,
		func(dir string, res tier.Result, err error) {
			if err != nil {
				t.Errorf("compact %s: %v", dir, err)
			}
			results = append(results, res)
		})
	if len(results) != 4 {
		t.Fatalf("runner reported %d results, want 4", len(results))
	}
	// First tick compacts, second finds nothing to do.
	if results[0].Skipped || results[1].Skipped {
		t.Error("first sweep skipped work")
	}
	if !results[2].Skipped || !results[3].Skipped {
		t.Error("second sweep repeated work")
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}
