// Package unionfs implements DejaView's branchable file-system layer
// (§5.2): a unioning file system in the style of UnionFS that joins a
// read-only lfs snapshot with a writable lfs instance by stacking the
// latter on top of the former.
//
// Objects from the writable layer are always visible; objects from the
// read-only layer are visible only when no corresponding object (or
// whiteout) exists above them. Non-modifying operations on lower objects
// pass through; modifying operations first copy the object up into the
// writable layer. Deleting a lower object records a whiteout.
//
// Because each revived session gets its own writable layer over the same
// snapshot, multiple revived sessions can execute concurrently and
// diverge — the branchable property. And because the writable layer is
// itself a log-structured lfs.FS, a revived session retains DejaView's
// ability to continuously checkpoint and later revive it again.
package unionfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"dejaview/internal/lfs"
)

// ErrReadOnly reports an operation the union cannot express.
var ErrReadOnly = errors.New("unionfs: lower layer is read-only")

// Stats counts union activity.
type Stats struct {
	// CopyUps counts files copied from the lower to the upper layer
	// before modification.
	CopyUps uint64
	// CopyUpBytes is the data volume copied up.
	CopyUpBytes int64
	// Whiteouts is the number of live whiteout markers.
	Whiteouts int
}

// Union is one writable branch over a read-only snapshot.
//
// Union is safe for concurrent use.
type Union struct {
	mu       sync.Mutex
	lower    *lfs.View
	upper    *lfs.FS
	whiteout map[string]bool
	stats    Stats
}

// New creates a branch over the given snapshot with a fresh writable
// layer.
func New(lower *lfs.View) *Union {
	return &Union{
		lower:    lower,
		upper:    lfs.New(),
		whiteout: make(map[string]bool),
	}
}

// NewWithUpper creates a branch with a caller-supplied writable layer
// (e.g. to continue using a session's existing log-structured FS).
func NewWithUpper(lower *lfs.View, upper *lfs.FS) *Union {
	return &Union{lower: lower, upper: upper, whiteout: make(map[string]bool)}
}

// Upper exposes the writable layer, which the next checkpoint generation
// snapshots.
func (u *Union) Upper() *lfs.FS { return u.upper }

// Lower exposes the read-only snapshot.
func (u *Union) Lower() *lfs.View { return u.lower }

func cleanPath(path string) string {
	if path == "" {
		return "/"
	}
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	return path
}

// hidden reports whether path (or an ancestor) is whited out. Caller
// holds u.mu.
func (u *Union) hiddenLocked(path string) bool {
	p := cleanPath(path)
	for {
		if u.whiteout[p] {
			return true
		}
		i := strings.LastIndexByte(p, '/')
		if i <= 0 {
			return false
		}
		p = p[:i]
	}
}

// ReadFile reads from the upper layer when present, else the lower.
func (u *Union) ReadFile(path string) ([]byte, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if data, err := u.upper.ReadFile(path); err == nil {
		return data, nil
	} else if !errors.Is(err, lfs.ErrNotExist) {
		return nil, err
	}
	if u.hiddenLocked(path) {
		return nil, fmt.Errorf("%w: %s", lfs.ErrNotExist, path)
	}
	return u.lower.ReadFile(path)
}

// Stat describes path through the union.
func (u *Union) Stat(path string) (lfs.Stat, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.statLocked(path)
}

func (u *Union) statLocked(path string) (lfs.Stat, error) {
	if st, err := u.upper.Stat(path); err == nil {
		return st, nil
	} else if !errors.Is(err, lfs.ErrNotExist) {
		return lfs.Stat{}, err
	}
	if u.hiddenLocked(path) {
		return lfs.Stat{}, fmt.Errorf("%w: %s", lfs.ErrNotExist, path)
	}
	return u.lower.Stat(path)
}

// Exists reports whether path resolves through the union.
func (u *Union) Exists(path string) bool {
	_, err := u.Stat(path)
	return err == nil
}

// ReadDir merges the upper and lower listings, hiding whiteouts.
func (u *Union) ReadDir(path string) ([]string, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	names := map[string]bool{}
	upNames, upErr := u.upper.ReadDir(path)
	for _, n := range upNames {
		names[n] = true
	}
	if !u.hiddenLocked(path) {
		if lowNames, err := u.lower.ReadDir(path); err == nil {
			p := cleanPath(path)
			for _, n := range lowNames {
				full := p + "/" + n
				if p == "/" {
					full = "/" + n
				}
				if !u.whiteout[full] {
					names[n] = true
				}
			}
		} else if upErr != nil {
			// Neither layer has the directory.
			return nil, err
		}
	} else if upErr != nil {
		return nil, fmt.Errorf("%w: %s", lfs.ErrNotExist, path)
	}
	out := make([]string, 0, len(names))
	for n := range names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// ensureUpperDirs replicates the directory chain of path in the upper
// layer so a copy-up or create has a home. Caller holds u.mu.
func (u *Union) ensureUpperDirsLocked(path string) error {
	p := cleanPath(path)
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return nil
	}
	return u.upper.MkdirAll(p[:i])
}

// copyUp copies a lower file into the upper layer. Caller holds u.mu.
func (u *Union) copyUpLocked(path string) error {
	data, err := u.lower.ReadFile(path)
	if err != nil {
		return err
	}
	if err := u.ensureUpperDirsLocked(path); err != nil {
		return err
	}
	if err := u.upper.WriteFile(path, data); err != nil {
		return err
	}
	u.stats.CopyUps++
	u.stats.CopyUpBytes += int64(len(data))
	return nil
}

// WriteFile replaces a file's contents. Whole-file overwrite of a lower
// file needs no copy-up (the paper: applications commonly overwrite files
// completely, "which obviates the need to copy the file between layers").
func (u *Union) WriteFile(path string, data []byte) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if err := u.ensureUpperDirsLocked(path); err != nil {
		return err
	}
	if err := u.upper.WriteFile(path, data); err != nil {
		return err
	}
	delete(u.whiteout, cleanPath(path))
	return nil
}

// WriteAt writes at an offset; a lower file is first copied up so the
// rest of its contents survive.
func (u *Union) WriteAt(path string, off int64, data []byte) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if !u.upper.Exists(path) {
		if !u.hiddenLocked(path) && u.lower.Exists(path) {
			st, err := u.lower.Stat(path)
			if err != nil {
				return err
			}
			if st.Kind == lfs.KindDir {
				return fmt.Errorf("%w: %s", lfs.ErrIsDir, path)
			}
			if err := u.copyUpLocked(path); err != nil {
				return err
			}
		} else if err := u.ensureUpperDirsLocked(path); err != nil {
			return err
		}
	}
	if err := u.upper.WriteAt(path, off, data); err != nil {
		return err
	}
	delete(u.whiteout, cleanPath(path))
	return nil
}

// Create creates a new file, failing when the union already has one.
func (u *Union) Create(path string) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, err := u.statLocked(path); err == nil {
		return fmt.Errorf("%w: %s", lfs.ErrExist, path)
	}
	if err := u.ensureUpperDirsLocked(path); err != nil {
		return err
	}
	if err := u.upper.Create(path); err != nil {
		return err
	}
	delete(u.whiteout, cleanPath(path))
	return nil
}

// Mkdir creates a directory in the upper layer.
func (u *Union) Mkdir(path string) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, err := u.statLocked(path); err == nil {
		return fmt.Errorf("%w: %s", lfs.ErrExist, path)
	}
	if err := u.ensureUpperDirsLocked(path); err != nil {
		return err
	}
	if err := u.upper.Mkdir(path); err != nil {
		return err
	}
	delete(u.whiteout, cleanPath(path))
	return nil
}

// MkdirAll creates a directory chain through the union.
func (u *Union) MkdirAll(path string) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if err := u.upper.MkdirAll(path); err != nil {
		return err
	}
	delete(u.whiteout, cleanPath(path))
	return nil
}

// Remove deletes a file or empty directory: upper objects are removed
// from the upper layer; lower objects get a whiteout.
func (u *Union) Remove(path string) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	p := cleanPath(path)
	st, err := u.statLocked(path)
	if err != nil {
		return err
	}
	if st.Kind == lfs.KindDir {
		names, err := u.readDirUnlockedMerge(path)
		if err == nil && len(names) > 0 {
			return fmt.Errorf("%w: %s", lfs.ErrNotEmpty, path)
		}
	}
	if u.upper.Exists(path) {
		if err := u.upper.Remove(path); err != nil {
			return err
		}
	}
	if !u.hiddenLocked(path) && u.lower.Exists(path) {
		u.whiteout[p] = true
		u.stats.Whiteouts = len(u.whiteout)
	}
	return nil
}

// readDirUnlockedMerge is ReadDir's merge with u.mu already held.
func (u *Union) readDirUnlockedMerge(path string) ([]string, error) {
	names := map[string]bool{}
	if upNames, err := u.upper.ReadDir(path); err == nil {
		for _, n := range upNames {
			names[n] = true
		}
	}
	if !u.hiddenLocked(path) {
		if lowNames, err := u.lower.ReadDir(path); err == nil {
			p := cleanPath(path)
			for _, n := range lowNames {
				full := p + "/" + n
				if p == "/" {
					full = "/" + n
				}
				if !u.whiteout[full] {
					names[n] = true
				}
			}
		}
	}
	out := make([]string, 0, len(names))
	for n := range names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// Rename moves a file within the union: copy-up plus whiteout semantics.
func (u *Union) Rename(oldPath, newPath string) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	st, err := u.statLocked(oldPath)
	if err != nil {
		return err
	}
	if st.Kind == lfs.KindDir {
		return fmt.Errorf("%w: directory rename across union layers", ErrReadOnly)
	}
	if _, err := u.statLocked(newPath); err == nil {
		return fmt.Errorf("%w: %s", lfs.ErrExist, newPath)
	}
	if !u.upper.Exists(oldPath) {
		if err := u.copyUpLocked(oldPath); err != nil {
			return err
		}
	}
	if err := u.ensureUpperDirsLocked(newPath); err != nil {
		return err
	}
	if err := u.upper.Rename(oldPath, newPath); err != nil {
		return err
	}
	if u.lower.Exists(oldPath) {
		u.whiteout[cleanPath(oldPath)] = true
		u.stats.Whiteouts = len(u.whiteout)
	}
	delete(u.whiteout, cleanPath(newPath))
	return nil
}

// Stats returns a copy of the union counters.
func (u *Union) Stats() Stats {
	u.mu.Lock()
	defer u.mu.Unlock()
	st := u.stats
	st.Whiteouts = len(u.whiteout)
	return st
}
