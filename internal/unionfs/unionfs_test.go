package unionfs

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dejaview/internal/lfs"
)

// lowerFixture builds a snapshot containing a small tree.
func lowerFixture(t *testing.T) *lfs.View {
	t.Helper()
	fs := lfs.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(fs.MkdirAll("/home/user"))
	must(fs.WriteFile("/home/user/doc.txt", []byte("original document")))
	must(fs.WriteFile("/home/user/notes.txt", []byte("old notes")))
	must(fs.MkdirAll("/etc"))
	must(fs.WriteFile("/etc/config", []byte("key=value")))
	v, err := fs.At(fs.CurrentEpoch())
	must(err)
	return v
}

func TestReadThroughToLower(t *testing.T) {
	u := New(lowerFixture(t))
	got, err := u.ReadFile("/home/user/doc.txt")
	if err != nil || string(got) != "original document" {
		t.Errorf("read through = %q, %v", got, err)
	}
	if !u.Exists("/etc/config") {
		t.Error("lower file invisible")
	}
}

func TestUpperShadowsLower(t *testing.T) {
	u := New(lowerFixture(t))
	if err := u.WriteFile("/home/user/doc.txt", []byte("edited")); err != nil {
		t.Fatal(err)
	}
	got, _ := u.ReadFile("/home/user/doc.txt")
	if string(got) != "edited" {
		t.Errorf("after write = %q", got)
	}
	// The snapshot itself is untouched.
	low, _ := u.Lower().ReadFile("/home/user/doc.txt")
	if string(low) != "original document" {
		t.Error("write leaked into the read-only snapshot")
	}
}

func TestWholeFileOverwriteSkipsCopyUp(t *testing.T) {
	u := New(lowerFixture(t))
	if err := u.WriteFile("/home/user/doc.txt", []byte("replacement")); err != nil {
		t.Fatal(err)
	}
	if got := u.Stats().CopyUps; got != 0 {
		t.Errorf("CopyUps = %d, want 0 for whole-file overwrite", got)
	}
}

func TestPartialWriteCopiesUp(t *testing.T) {
	u := New(lowerFixture(t))
	if err := u.WriteAt("/home/user/doc.txt", 9, []byte("DOC")); err != nil {
		t.Fatal(err)
	}
	got, _ := u.ReadFile("/home/user/doc.txt")
	if string(got) != "original DOCument" {
		t.Errorf("after partial write = %q", got)
	}
	st := u.Stats()
	if st.CopyUps != 1 {
		t.Errorf("CopyUps = %d, want 1", st.CopyUps)
	}
	if st.CopyUpBytes != int64(len("original document")) {
		t.Errorf("CopyUpBytes = %d", st.CopyUpBytes)
	}
}

func TestRemoveLowerCreatesWhiteout(t *testing.T) {
	u := New(lowerFixture(t))
	if err := u.Remove("/home/user/notes.txt"); err != nil {
		t.Fatal(err)
	}
	if u.Exists("/home/user/notes.txt") {
		t.Error("whited-out file still visible")
	}
	if _, err := u.ReadFile("/home/user/notes.txt"); !errors.Is(err, lfs.ErrNotExist) {
		t.Errorf("read err = %v, want ErrNotExist", err)
	}
	if u.Stats().Whiteouts != 1 {
		t.Errorf("Whiteouts = %d", u.Stats().Whiteouts)
	}
	// Lower layer unchanged.
	if !u.Lower().Exists("/home/user/notes.txt") {
		t.Error("remove leaked into snapshot")
	}
}

func TestRecreateAfterWhiteout(t *testing.T) {
	u := New(lowerFixture(t))
	if err := u.Remove("/home/user/notes.txt"); err != nil {
		t.Fatal(err)
	}
	if err := u.WriteFile("/home/user/notes.txt", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	got, err := u.ReadFile("/home/user/notes.txt")
	if err != nil || string(got) != "fresh" {
		t.Errorf("recreated = %q, %v", got, err)
	}
}

func TestReadDirMerges(t *testing.T) {
	u := New(lowerFixture(t))
	if err := u.WriteFile("/home/user/new.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := u.Remove("/home/user/notes.txt"); err != nil {
		t.Fatal(err)
	}
	names, err := u.ReadDir("/home/user")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"doc.txt", "new.txt"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("ReadDir = %v, want %v", names, want)
	}
}

func TestReadDirRootMerge(t *testing.T) {
	u := New(lowerFixture(t))
	if err := u.MkdirAll("/var"); err != nil {
		t.Fatal(err)
	}
	names, err := u.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"etc", "home", "var"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("root ReadDir = %v, want %v", names, want)
	}
}

func TestCreateConflicts(t *testing.T) {
	u := New(lowerFixture(t))
	if err := u.Create("/home/user/doc.txt"); !errors.Is(err, lfs.ErrExist) {
		t.Errorf("create over lower file err = %v, want ErrExist", err)
	}
	if err := u.Mkdir("/etc"); !errors.Is(err, lfs.ErrExist) {
		t.Errorf("mkdir over lower dir err = %v, want ErrExist", err)
	}
}

func TestRemoveNonEmptyMergedDir(t *testing.T) {
	u := New(lowerFixture(t))
	if err := u.Remove("/home/user"); !errors.Is(err, lfs.ErrNotEmpty) {
		t.Errorf("err = %v, want ErrNotEmpty", err)
	}
}

func TestRemoveDirThenInvisibleChildren(t *testing.T) {
	u := New(lowerFixture(t))
	// Empty the directory, then remove it.
	if err := u.Remove("/home/user/doc.txt"); err != nil {
		t.Fatal(err)
	}
	if err := u.Remove("/home/user/notes.txt"); err != nil {
		t.Fatal(err)
	}
	if err := u.Remove("/home/user"); err != nil {
		t.Fatal(err)
	}
	if u.Exists("/home/user") {
		t.Error("removed dir still visible")
	}
	if u.Exists("/home/user/doc.txt") {
		t.Error("child of whited-out dir visible")
	}
	if _, err := u.ReadDir("/home/user"); err == nil {
		t.Error("ReadDir of removed dir should fail")
	}
}

func TestRenameLowerFile(t *testing.T) {
	u := New(lowerFixture(t))
	if err := u.Rename("/home/user/doc.txt", "/home/user/renamed.txt"); err != nil {
		t.Fatal(err)
	}
	if u.Exists("/home/user/doc.txt") {
		t.Error("old name visible after rename")
	}
	got, err := u.ReadFile("/home/user/renamed.txt")
	if err != nil || string(got) != "original document" {
		t.Errorf("renamed contents = %q, %v", got, err)
	}
	if u.Stats().CopyUps != 1 {
		t.Errorf("CopyUps = %d, want 1", u.Stats().CopyUps)
	}
}

func TestRenameMissing(t *testing.T) {
	u := New(lowerFixture(t))
	if err := u.Rename("/nope", "/x"); !errors.Is(err, lfs.ErrNotExist) {
		t.Errorf("err = %v", err)
	}
}

func TestBranchesAreIndependent(t *testing.T) {
	low := lowerFixture(t)
	b1 := New(low)
	b2 := New(low)
	if err := b1.WriteFile("/home/user/doc.txt", []byte("branch one")); err != nil {
		t.Fatal(err)
	}
	if err := b2.WriteFile("/home/user/doc.txt", []byte("branch two")); err != nil {
		t.Fatal(err)
	}
	if err := b2.Remove("/etc/config"); err != nil {
		t.Fatal(err)
	}
	g1, _ := b1.ReadFile("/home/user/doc.txt")
	g2, _ := b2.ReadFile("/home/user/doc.txt")
	if string(g1) != "branch one" || string(g2) != "branch two" {
		t.Errorf("branch isolation broken: %q / %q", g1, g2)
	}
	if !b1.Exists("/etc/config") {
		t.Error("whiteout leaked across branches")
	}
}

func TestUpperIsSnapshottable(t *testing.T) {
	// The revived session's writable layer must support snapshots so it
	// can itself be checkpointed and revived (§5.2).
	u := New(lowerFixture(t))
	if err := u.WriteFile("/home/user/work.txt", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	e := u.Upper().TagCheckpoint(1)
	if err := u.WriteFile("/home/user/work.txt", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, err := u.Upper().At(e)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := v.ReadFile("/home/user/work.txt")
	if string(got) != "v1" {
		t.Errorf("upper snapshot sees %q, want v1", got)
	}
}

func TestMkdirAllThroughUnion(t *testing.T) {
	u := New(lowerFixture(t))
	if err := u.MkdirAll("/deep/nested/tree"); err != nil {
		t.Fatal(err)
	}
	if err := u.WriteFile("/deep/nested/tree/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !u.Exists("/deep/nested/tree/f") {
		t.Error("deep create failed")
	}
}

// Property: a union over a snapshot behaves exactly like a plain
// read-write map initialized with the snapshot contents.
func TestUnionMatchesModel(t *testing.T) {
	base := map[string][]byte{
		"/f1": []byte("one"),
		"/f2": []byte("two"),
		"/f3": []byte("three"),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		low := lfs.New()
		for p, d := range base {
			if err := low.WriteFile(p, d); err != nil {
				return false
			}
		}
		view, err := low.At(low.CurrentEpoch())
		if err != nil {
			return false
		}
		u := New(view)
		model := map[string][]byte{}
		for p, d := range base {
			model[p] = append([]byte(nil), d...)
		}
		paths := []string{"/f1", "/f2", "/f3", "/f4", "/f5"}
		for step := 0; step < 50; step++ {
			p := paths[rng.Intn(len(paths))]
			switch rng.Intn(3) {
			case 0: // write
				data := make([]byte, rng.Intn(64))
				rng.Read(data)
				if err := u.WriteFile(p, data); err != nil {
					return false
				}
				model[p] = data
			case 1: // remove
				err := u.Remove(p)
				if _, ok := model[p]; ok {
					if err != nil {
						return false
					}
					delete(model, p)
				} else if !errors.Is(err, lfs.ErrNotExist) {
					return false
				}
			case 2: // partial write
				if _, ok := model[p]; !ok {
					continue
				}
				patch := make([]byte, 1+rng.Intn(8))
				rng.Read(patch)
				off := int64(rng.Intn(16))
				if err := u.WriteAt(p, off, patch); err != nil {
					return false
				}
				cur := model[p]
				if int64(len(cur)) < off+int64(len(patch)) {
					grown := make([]byte, off+int64(len(patch)))
					copy(grown, cur)
					cur = grown
				}
				copy(cur[off:], patch)
				model[p] = cur
			}
		}
		for _, p := range paths {
			got, err := u.ReadFile(p)
			want, ok := model[p]
			if ok {
				if err != nil || !bytes.Equal(got, want) {
					return false
				}
			} else if !errors.Is(err, lfs.ErrNotExist) {
				return false
			}
		}
		// Snapshot must be untouched.
		for p, d := range base {
			got, err := view.ReadFile(p)
			if err != nil || !bytes.Equal(got, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
