package unionfs

import (
	"errors"
	"testing"

	"dejaview/internal/lfs"
)

func TestStatThroughLayers(t *testing.T) {
	u := New(lowerFixture(t))
	// Lower file.
	st, err := u.Stat("/home/user/doc.txt")
	if err != nil || st.Kind != lfs.KindFile {
		t.Errorf("lower stat = %+v, %v", st, err)
	}
	// Upper overrides.
	if err := u.WriteFile("/home/user/doc.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	st, err = u.Stat("/home/user/doc.txt")
	if err != nil || st.Size != 1 {
		t.Errorf("upper stat = %+v, %v", st, err)
	}
	// Whiteout hides.
	if err := u.Remove("/etc/config"); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Stat("/etc/config"); !errors.Is(err, lfs.ErrNotExist) {
		t.Errorf("whiteout stat err = %v", err)
	}
	// Missing path.
	if _, err := u.Stat("/nope"); !errors.Is(err, lfs.ErrNotExist) {
		t.Errorf("missing stat err = %v", err)
	}
}

func TestWriteAtHiddenLowerFileCreatesFresh(t *testing.T) {
	u := New(lowerFixture(t))
	if err := u.Remove("/home/user/doc.txt"); err != nil {
		t.Fatal(err)
	}
	// A positional write to the whited-out path starts from scratch, not
	// from the hidden lower contents.
	if err := u.WriteAt("/home/user/doc.txt", 2, []byte("AB")); err != nil {
		t.Fatal(err)
	}
	got, err := u.ReadFile("/home/user/doc.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "\x00\x00AB" {
		t.Errorf("got %q, want zero-padded fresh file", got)
	}
	if u.Stats().CopyUps != 0 {
		t.Error("hidden file should not copy up")
	}
}

func TestWriteAtOnDirectoryFails(t *testing.T) {
	u := New(lowerFixture(t))
	if err := u.WriteAt("/home/user", 0, []byte("x")); !errors.Is(err, lfs.ErrIsDir) {
		t.Errorf("err = %v, want ErrIsDir", err)
	}
}

func TestRemoveMissing(t *testing.T) {
	u := New(lowerFixture(t))
	if err := u.Remove("/absent"); !errors.Is(err, lfs.ErrNotExist) {
		t.Errorf("err = %v", err)
	}
}

func TestRenameOntoExistingFails(t *testing.T) {
	u := New(lowerFixture(t))
	err := u.Rename("/home/user/doc.txt", "/home/user/notes.txt")
	if !errors.Is(err, lfs.ErrExist) {
		t.Errorf("err = %v, want ErrExist", err)
	}
}

func TestRenameDirectoryUnsupported(t *testing.T) {
	u := New(lowerFixture(t))
	if err := u.Rename("/home/user", "/home/other"); !errors.Is(err, ErrReadOnly) {
		t.Errorf("err = %v, want ErrReadOnly", err)
	}
}

func TestReadDirMissingEverywhere(t *testing.T) {
	u := New(lowerFixture(t))
	if _, err := u.ReadDir("/no/such/dir"); err == nil {
		t.Error("ReadDir of missing dir succeeded")
	}
}

func TestCreateFreshUpperFile(t *testing.T) {
	u := New(lowerFixture(t))
	if err := u.Create("/brand-new"); err != nil {
		t.Fatal(err)
	}
	if !u.Exists("/brand-new") {
		t.Error("created file missing")
	}
	if err := u.Create("/brand-new"); !errors.Is(err, lfs.ErrExist) {
		t.Errorf("duplicate create err = %v", err)
	}
}

func TestNewWithUpperKeepsExistingState(t *testing.T) {
	upper := lfs.New()
	if err := upper.WriteFile("/pre-existing", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	u := NewWithUpper(lowerFixture(t), upper)
	got, err := u.ReadFile("/pre-existing")
	if err != nil || string(got) != "kept" {
		t.Errorf("pre-existing upper state lost: %q, %v", got, err)
	}
	// And lower files still show through.
	if !u.Exists("/etc/config") {
		t.Error("lower invisible through NewWithUpper")
	}
}
