package lint

import (
	"go/ast"
	"strings"
)

// droppedErrorRule keeps the two-phase-commit story honest: in the
// save/commit/compaction packages (record, core, tier, atomicfile,
// vexec) an ignored error from Close, Commit, CommitAll, Rename, Sync,
// or Write is exactly how a torn archive slips past the fail-closed
// guarantee — the fsync that silently failed is the page the crash
// matrix can no longer prove durable. Errors from these calls must be
// checked (assigned to a non-blank variable, returned, or tested), or
// explicitly waived with //lint:ignore dropped-error <why> where the
// drop is provably safe (hash.Hash.Write never fails; a Close on the
// error path must not mask the root cause).
//
// Dropped means: the call is a bare statement, a defer, a `go`
// statement, or its error result is assigned to the blank identifier.
type droppedErrorRule struct{}

func (droppedErrorRule) Name() string { return "dropped-error" }
func (droppedErrorRule) Doc() string {
	return "Close/Commit/CommitAll/Rename/Sync/Write errors in save/commit paths (record, core, tier, atomicfile, vexec) must be checked or waived"
}

// droppedErrorDirs are the module-relative package directories whose
// write paths carry the durability guarantee.
var droppedErrorDirs = []string{
	"internal/record",
	"internal/core",
	"internal/tier",
	"internal/atomicfile",
	"internal/vexec",
}

// droppedErrorMethods are the error-returning calls the rule watches.
var droppedErrorMethods = map[string]bool{
	"Close": true, "Commit": true, "CommitAll": true,
	"Rename": true, "Sync": true, "Write": true,
}

func droppedErrorInScope(f *File) bool {
	if f.Test {
		return false
	}
	for _, dir := range droppedErrorDirs {
		if strings.HasPrefix(f.Path, dir+"/") {
			return true
		}
	}
	return false
}

func (droppedErrorRule) Check(m *Module, report ReportFunc) {
	for _, p := range m.Packages {
		for _, f := range p.Files {
			if !droppedErrorInScope(f) {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.ExprStmt:
					if call := watchedCall(v.X); call != nil {
						report(call.Pos(), "%s() error is dropped in a save/commit path; check it or waive with //lint:ignore dropped-error <why>", exprString(call.Fun))
					}
				case *ast.DeferStmt:
					if watchedCall(v.Call) != nil {
						report(v.Call.Pos(), "deferred %s() drops its error in a save/commit path; use a named-error close helper, check it, or waive with //lint:ignore dropped-error <why>", exprString(v.Call.Fun))
					}
				case *ast.GoStmt:
					if watchedCall(v.Call) != nil {
						report(v.Call.Pos(), "`go %s()` drops its error in a save/commit path; check it or waive with //lint:ignore dropped-error <why>", exprString(v.Call.Fun))
					}
				case *ast.AssignStmt:
					checkAssignDrop(v, report)
				}
				return true
			})
		}
	}
}

// watchedCall matches `<expr>.<Method>(...)` for the watched method
// set (os.Rename counts: package functions parse as selectors too).
func watchedCall(e ast.Expr) *ast.CallExpr {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !droppedErrorMethods[sel.Sel.Name] {
		return nil
	}
	return call
}

// checkAssignDrop flags watched calls whose error result lands in the
// blank identifier: `_ = f.Close()`, `n, _ := w.Write(b)` (the error
// is the last result by Go convention), and the 1:1 multi-assign form.
func checkAssignDrop(v *ast.AssignStmt, report ReportFunc) {
	flag := func(call *ast.CallExpr) {
		report(call.Pos(), "%s() error is assigned to _ in a save/commit path; check it or waive with //lint:ignore dropped-error <why>", exprString(call.Fun))
	}
	if len(v.Rhs) == 1 {
		call := watchedCall(v.Rhs[0])
		if call == nil || len(v.Lhs) == 0 {
			return
		}
		if isBlankIdent(v.Lhs[len(v.Lhs)-1]) {
			flag(call)
		}
		return
	}
	for i, rhs := range v.Rhs {
		if call := watchedCall(rhs); call != nil && i < len(v.Lhs) && isBlankIdent(v.Lhs[i]) {
			flag(call)
		}
	}
}

func isBlankIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
