package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// TestRunDeterministic locks in that the parallel loader does not leak
// scheduling order into results: loading the same trees repeatedly and
// running the full registry yields identical findings every time, and
// each run's findings come out sorted by (file, line, rule) — the order
// the JSON schema promises.
func TestRunDeterministic(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	runAll := func() []Finding {
		var all []Finding
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			m, err := loadFixtureTree(filepath.Join("testdata", "src", e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			findings := Run(m, AllRules()).Findings
			if !sort.SliceIsSorted(findings, func(i, j int) bool {
				a, b := findings[i], findings[j]
				if a.File != b.File {
					return a.File < b.File
				}
				if a.Line != b.Line {
					return a.Line < b.Line
				}
				return a.Rule < b.Rule
			}) {
				t.Fatalf("tree %s: findings not sorted: %v", e.Name(), findings)
			}
			all = append(all, findings...)
		}
		return all
	}
	baseline := runAll()
	if len(baseline) == 0 {
		t.Fatal("fixture trees produced no findings; determinism check is vacuous")
	}
	for round := 1; round < 4; round++ {
		if got := runAll(); !reflect.DeepEqual(got, baseline) {
			t.Fatalf("round %d findings differ from round 0:\nround 0: %v\nround %d: %v", round, baseline, round, got)
		}
	}
}

// TestRuleTimes locks the per-rule timing shape: one entry per rule, in
// run order, never negative.
func TestRuleTimes(t *testing.T) {
	m, err := loadFixtureTree(filepath.Join("testdata", "src", "wallclock"))
	if err != nil {
		t.Fatal(err)
	}
	rules := AllRules()
	res := Run(m, rules)
	if len(res.RuleTimes) != len(rules) {
		t.Fatalf("got %d rule times for %d rules", len(res.RuleTimes), len(rules))
	}
	for i, rt := range res.RuleTimes {
		if rt.Rule != rules[i].Name() {
			t.Errorf("rule time %d is %q, want %q (run order)", i, rt.Rule, rules[i].Name())
		}
		if rt.Millis < 0 {
			t.Errorf("rule %q has negative duration %v ms", rt.Rule, rt.Millis)
		}
	}
}
