package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// obsNameRule enforces the `<pkg>.<op>` grammar on obs instrument and
// span names and pins the `<pkg>` component to the creating package:
// the metrics-regression tests and `dvbench -compare` key on these
// names, so a typo or a stale package prefix silently unhooks a
// subsystem from its regression checks. Test files are exempt — they
// read other packages' instruments and exercise the registry with
// deliberately odd names.
type obsNameRule struct{}

func (obsNameRule) Name() string { return "obs-name" }
func (obsNameRule) Doc() string {
	return "obs instrument/span name literals must be `<pkg>.<op>` with <pkg> = the enclosing package"
}

// obsNamePattern: a package component, then one or more dot-separated
// lowercase operation segments ("record.duration_cache_hits",
// "record.save.commands").
var obsNamePattern = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z0-9_]+)+$`)

// obsCreationMethods create or look up named instruments.
var obsCreationMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func (obsNameRule) Check(m *Module, report ReportFunc) {
	for _, p := range m.Packages {
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch {
				case obsCreationMethods[sel.Sel.Name]:
					if lit, ok := stringLit(call.Args[0]); ok {
						checkObsName(m, p, f, sel.Sel.Name, lit, false, call.Args[0].Pos(), report)
					}
				case sel.Sel.Name == "Start" && len(call.Args) == 1:
					// Only tracer spans rooted in the obs package
					// (obs.DefaultTracer.Start, obs tracer vars): other
					// Start methods are none of our business.
					if isObsRooted(p, f, sel.X) {
						if lit, ok := stringLit(call.Args[0]); ok {
							checkObsName(m, p, f, "Start", lit, false, call.Args[0].Pos(), report)
						}
					}
				case sel.Sel.Name == "Child" && len(call.Args) == 1:
					lit, dynamic, ok := litPrefix(call.Args[0])
					if ok && strings.Contains(lit, ".") {
						checkObsName(m, p, f, "Child", lit, dynamic, call.Args[0].Pos(), report)
					}
				}
				return true
			})
		}
	}
}

func checkObsName(m *Module, p *Package, f *File, method, name string, dynamic bool, pos token.Pos, report ReportFunc) {
	full := name
	if dynamic {
		if !strings.HasSuffix(name, ".") {
			report(pos, "dynamic obs %s name must extend a literal `<pkg>.<op>.` prefix, got %q + ...", method, name)
			return
		}
		full = name + "x" // validate the prefix with a stand-in segment
	}
	if !obsNamePattern.MatchString(full) {
		report(pos, "obs %s name %q does not match `<pkg>.<op>` (lowercase package, dot, lowercase_op segments)", method, name)
		return
	}
	pkg := full[:strings.IndexByte(full, '.')]
	if pkg != p.Name {
		report(pos, "obs %s name %q claims package %q but lives in package %q; instrument names are `<pkg>.<op>` with <pkg> = the creating package", method, name, pkg, p.Name)
	}
}

// isObsRooted reports whether the receiver chain bottoms out at the obs
// package (obs.DefaultTracer, obs.Default, ...).
func isObsRooted(p *Package, f *File, x ast.Expr) bool {
	for {
		switch v := x.(type) {
		case *ast.SelectorExpr:
			x = v.X
		case *ast.Ident:
			path := p.PkgPathOf(f, v)
			return path == "obs" || strings.HasSuffix(path, "/obs")
		default:
			return false
		}
	}
}

// failpointNameRule enforces the `<pkg>/<op>[:<target>]` grammar on
// failpoint names, pins the `<pkg>` component of evaluation sites
// (Inject/Reader/Writer/WrapConn) to the enclosing package, and
// cross-checks that every failpoint a test arms is actually evaluated
// somewhere in non-test code — an armed-but-never-evaluated name means
// a fault matrix that silently tests nothing.
type failpointNameRule struct{}

func (failpointNameRule) Name() string { return "failpoint-name" }
func (failpointNameRule) Doc() string {
	return "failpoint name literals must be `<pkg>/<op>[:<target>]`; test-armed names must be evaluated in non-test code"
}

// failpointNamePattern: package component, slash, dotted op segments,
// optional :target (empty target allowed only for dynamic prefixes,
// checked separately).
var failpointNamePattern = regexp.MustCompile(`^[a-z][a-z0-9]*/[a-z0-9_]+(\.[a-z0-9_]+)*(:.*)?$`)

// failpointEvalFuncs evaluate a point in production code;
// failpointCtrlFuncs arm or query it (tests and tools).
var (
	failpointEvalFuncs = map[string]bool{"Inject": true, "Reader": true, "Writer": true, "WrapConn": true}
	failpointCtrlFuncs = map[string]bool{"Arm": true, "Disarm": true, "Fired": true, "Calls": true}
)

type fpEvaluated struct {
	name    string
	dynamic bool // literal is a `<pkg>/<op>:` prefix completed at runtime
}

func (failpointNameRule) Check(m *Module, report ReportFunc) {
	var evaluated []fpEvaluated
	type armed struct {
		name string
		pos  token.Pos
	}
	var armedInTests []armed

	for _, p := range m.Packages {
		for _, f := range p.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				// Collect grammar-plausible literals from test-file
				// composite literals: the e2e fault matrices are tables
				// of failpoint names.
				if cl, ok := n.(*ast.CompositeLit); ok && f.Test {
					for _, elt := range cl.Elts {
						e := elt
						if kv, ok := e.(*ast.KeyValueExpr); ok {
							e = kv.Value
						}
						if lit, ok := stringLit(e); ok && looksLikeFailpoint(m, lit) {
							armedInTests = append(armedInTests, armed{lit, e.Pos()})
						}
					}
					return true
				}
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				base, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				path := p.PkgPathOf(f, base)
				if path != "failpoint" && !strings.HasSuffix(path, "/failpoint") {
					return true
				}
				isEval := failpointEvalFuncs[sel.Sel.Name]
				isCtrl := failpointCtrlFuncs[sel.Sel.Name]
				if !isEval && !isCtrl {
					return true
				}
				lit, dynamic, ok := litPrefix(call.Args[0])
				if !ok {
					return true
				}
				pos := call.Args[0].Pos()
				if f.Test {
					if isCtrl || isEval {
						armedInTests = append(armedInTests, armed{lit, pos})
					}
					return true
				}
				if dynamic && !strings.HasSuffix(lit, ":") {
					report(pos, "dynamic failpoint name must extend a literal `<pkg>/<op>:` prefix, got %q + ...", lit)
					return true
				}
				if !failpointNamePattern.MatchString(lit) {
					report(pos, "failpoint name %q does not match `<pkg>/<op>[:<target>]` (see DESIGN.md, \"Testing & fault injection\")", lit)
					return true
				}
				if isEval {
					pkg := lit[:strings.IndexByte(lit, '/')]
					if pkg != p.Name {
						report(pos, "failpoint %q claims package %q but is evaluated in package %q; points are named `<pkg>/<op>` after the package that evaluates them", lit, pkg, p.Name)
					}
					evaluated = append(evaluated, fpEvaluated{lit, dynamic})
				}
				return true
			})
		}
	}

	// Cross-check: every test-armed literal must be reachable through a
	// non-test evaluation site. Prefix evaluations ("record/open:" +
	// name) cover any armed name that extends them.
	for _, a := range armedInTests {
		if !looksLikeFailpoint(m, a.name) {
			continue
		}
		matched := false
		for _, e := range evaluated {
			if e.dynamic && strings.HasPrefix(a.name, e.name) {
				matched = true
				break
			}
			if !e.dynamic && (a.name == e.name || strings.HasPrefix(a.name, e.name+":")) {
				matched = true
				break
			}
		}
		if !matched {
			report(a.pos, "failpoint %q is armed in tests but never evaluated in non-test code; the fault it injects can never fire", a.name)
		}
	}
}

// looksLikeFailpoint reports whether a string literal plausibly names a
// failpoint: grammar match plus a `<pkg>` component that is a real
// package in the module (so path-like literals such as "testdata/x.dv"
// do not trip the cross-check).
func looksLikeFailpoint(m *Module, s string) bool {
	if !failpointNamePattern.MatchString(s) {
		return false
	}
	return m.HasPkgName(s[:strings.IndexByte(s, '/')])
}

// stringLit unwraps a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// litPrefix matches either a plain string literal or a `"lit" + expr`
// concatenation whose left operand is a literal (the dynamic-target
// idiom: failpoint.Inject("record/open:" + name)).
func litPrefix(e ast.Expr) (lit string, dynamic, ok bool) {
	if s, ok := stringLit(e); ok {
		return s, false, true
	}
	if bin, isBin := e.(*ast.BinaryExpr); isBin && bin.Op == token.ADD {
		// Left-associative: descend to the leftmost operand.
		left := bin.X
		for {
			if inner, isInner := left.(*ast.BinaryExpr); isInner && inner.Op == token.ADD {
				left = inner.X
				continue
			}
			break
		}
		if s, ok := stringLit(left); ok {
			return s, true, true
		}
	}
	return "", false, false
}
