package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// lockDisciplineRule keeps mutex usage structured: a Lock() should be
// released by a `defer Unlock()` in the same function, or by a plain
// Unlock() on the same receiver later in the same block with no return
// between them (the short critical-section idiom). Anything cleverer —
// unlocking on another goroutine, handing the lock across a channel,
// conditional unlock paths — needs an explicit
//
//	//lint:manual-unlock <reason>
//
// waiver on or above the Lock() line, which doubles as reviewer-facing
// documentation of the protocol. Lock() calls with no visible release
// at all, and critical sections crossed by a return statement, are
// findings.
type lockDisciplineRule struct{}

func (lockDisciplineRule) Name() string { return "lock-discipline" }
func (lockDisciplineRule) Doc() string {
	return "Lock() must pair with defer Unlock() or a straight-line Unlock(); anything else needs //lint:manual-unlock"
}

// lockPairs maps acquire methods to their release methods.
var lockPairs = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

func (lockDisciplineRule) Check(m *Module, report ReportFunc) {
	for _, p := range m.Packages {
		for _, f := range p.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.FuncDecl:
					if v.Body != nil {
						checkLockFunc(m, f, v.Body, report)
					}
					return true
				case *ast.FuncLit:
					checkLockFunc(m, f, v.Body, report)
					return true
				}
				return true
			})
		}
	}
}

// lockSite is one Lock()/RLock() call found in a function body, paired
// with the receiver expression it locks.
type lockSite struct {
	call    *ast.CallExpr
	recv    string // printed receiver expression ("s.mu", "store.idx.mu")
	release string // matching unlock method name
}

// checkLockFunc analyzes one function body in isolation. Nested
// function literals are analyzed separately (ast.Inspect above visits
// them too) and excluded here, except that a `defer func() {
// mu.Unlock() }()` at this level — unlock as a direct statement of the
// deferred closure — counts as this function's release (see
// deferredReleases).
func checkLockFunc(m *Module, f *File, body *ast.BlockStmt, report ReportFunc) {
	var locks []lockSite
	deferred := map[string]bool{} // receivers released by defer at this level

	walkSameFunc(body, func(n ast.Node) {
		switch v := n.(type) {
		case *ast.DeferStmt:
			// defer mu.Unlock(), or defer func() { ... mu.Unlock() ... }()
			for recv, method := range deferredReleases(v) {
				deferred[recv+"\x00"+method] = true
			}
		case *ast.CallExpr:
			if recv, method, ok := lockCall(v, lockPairs); ok {
				locks = append(locks, lockSite{call: v, recv: recv, release: method})
			}
		}
	})

	for _, l := range locks {
		// Mark an adjacent waiver used even when the lock turns out to be
		// fine: "unused" means "not next to any Lock", so a waiver stays
		// valid across refactors that fix the underlying pattern.
		line := m.Fset.Position(l.call.Pos()).Line
		waived := f.waiverAt(line) != nil
		if deferred[l.recv+"\x00"+l.release] || waived {
			continue
		}
		switch classifyInline(body, l) {
		case lockOK:
			// straight-line Lock ... Unlock, no return in between
		case lockCrossedByReturn:
			report(l.call.Pos(), "%s.%s() is not released before a return statement crosses the critical section; use defer %s.%s() or waive with //lint:manual-unlock <why>",
				l.recv, lockMethodName(l.call), l.recv, l.release)
		default:
			report(l.call.Pos(), "%s.%s() has no defer %s.%s() in this function and no straight-line %s(); add the defer or waive with //lint:manual-unlock <why>",
				l.recv, lockMethodName(l.call), l.recv, l.release, l.release)
		}
	}
}

const (
	lockOK = iota
	lockNoRelease
	lockCrossedByReturn
)

// classifyInline looks for a plain release of l.recv in the statement
// list containing the Lock call (or an enclosing one), verifying no
// return statement sits between lock and release. An if-subtree between
// them that both returns and releases (the early-exit-with-unlock
// idiom) is tolerated.
func classifyInline(body *ast.BlockStmt, l lockSite) int {
	// Find the innermost same-func block whose statement list contains
	// the Lock call, then scan forward from it.
	var result = lockNoRelease
	var scan func(list []ast.Stmt) bool
	scan = func(list []ast.Stmt) bool {
		idx := -1
		for i, st := range list {
			if containsPosSameFunc(st, l.call.Pos()) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return false
		}
		// Try the innermost block first.
		inner := false
		switch v := list[idx].(type) {
		case *ast.BlockStmt:
			inner = scan(v.List)
		case *ast.IfStmt:
			inner = scan(v.Body.List)
		case *ast.ForStmt:
			inner = scan(v.Body.List)
		case *ast.RangeStmt:
			inner = scan(v.Body.List)
		case *ast.SwitchStmt:
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok && containsPosSameFunc(c, l.call.Pos()) {
					inner = scan(cc.Body)
				}
			}
		case *ast.SelectStmt:
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && containsPosSameFunc(c, l.call.Pos()) {
					inner = scan(cc.Body)
				}
			}
		}
		if inner {
			return true
		}
		// Scan the tail of this list for a release; note returns on the way.
		for _, st := range list[idx+1:] {
			if releasesSameFunc(st, l.recv, l.release) {
				// Accept both the plain `mu.Unlock()` tail and the
				// early-exit idiom where a conditional releases before
				// returning (`if done { mu.Unlock(); return }`).
				result = lockOK
				return true
			}
			if subtreeReturnsSameFunc(st) {
				result = lockCrossedByReturn
				return true
			}
		}
		return false
	}
	scan(body.List)
	return result
}

// lockCall matches `<expr>.Lock()` / `<expr>.RLock()` with no
// arguments, returning the printed receiver and the release method.
func lockCall(call *ast.CallExpr, pairs map[string]string) (recv, release string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", "", false
	}
	rel, isLock := pairs[sel.Sel.Name]
	if !isLock {
		return "", "", false
	}
	return exprString(sel.X), rel, true
}

func lockMethodName(call *ast.CallExpr) string {
	return call.Fun.(*ast.SelectorExpr).Sel.Name
}

// releaseCall matches `<expr>.Unlock()` / `<expr>.RUnlock()`.
func releaseCall(call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", "", false
	}
	if sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock" {
		return "", "", false
	}
	return exprString(sel.X), sel.Sel.Name, true
}

// deferredReleases collects receiver/method pairs released by a defer
// statement: `defer mu.Unlock()` directly, or a `defer func() { ... }()`
// closure whose unlock is a *direct statement* of the closure body
// (the single-statement `defer func() { mu.Unlock() }()` idiom, plus
// closures that do cleanup work alongside the unlock). An unlock buried
// under a conditional or launched on yet another goroutine inside the
// deferred closure is NOT a structured release — the lock may survive
// the defer — so it is not credited here and the Lock() gets reported
// (or carries a //lint:manual-unlock waiver documenting the protocol).
func deferredReleases(d *ast.DeferStmt) map[string]string {
	out := map[string]string{}
	if recv, method, ok := releaseCall(d.Call); ok {
		out[recv] = method
		return out
	}
	if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
		for _, st := range fl.Body.List {
			es, ok := st.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok {
				if recv, method, ok := releaseCall(call); ok {
					out[recv] = method
				}
			}
		}
	}
	return out
}

// walkSameFunc visits every node in the body without descending into
// nested function literals (they are separate lock scopes), except that
// the visitor itself receives DeferStmt nodes whole.
func walkSameFunc(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// containsPosSameFunc reports whether pos falls inside the subtree,
// ignoring nested function literals.
func containsPosSameFunc(n ast.Node, pos token.Pos) bool {
	if pos < n.Pos() || pos >= n.End() {
		return false
	}
	inside := false
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || inside {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok && c.Pos() <= pos && pos < c.End() {
			return false // position is inside a nested func; handled there
		}
		if call, ok := c.(*ast.CallExpr); ok && call.Pos() == pos {
			inside = true
			return false
		}
		return true
	})
	return inside
}

// releasesSameFunc reports whether the subtree contains a plain release
// of recv (outside nested function literals and defers — a defer was
// already credited).
func releasesSameFunc(n ast.Stmt, recv, method string) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found || c == nil {
			return false
		}
		switch v := c.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if r, m, ok := releaseCall(v); ok && r == recv && m == method {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// subtreeReturnsSameFunc reports whether the subtree contains a return
// statement belonging to this function.
func subtreeReturnsSameFunc(n ast.Stmt) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found || c == nil {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if _, ok := c.(*ast.ReturnStmt); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// exprString renders a receiver expression to comparable text: ident
// and selector chains directly, anything else via go/printer.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.ParenExpr:
		return exprString(v.X)
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "?"
	}
	return strings.Join(strings.Fields(buf.String()), "")
}
