package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestFixtures runs the full rule registry over each golden fixture
// tree in testdata/src and compares the findings against the inline
// `// want <rule> "substr"` expectations. A `want-N` form anchors the
// expectation N lines above the comment, for findings reported on a
// directive line that cannot carry its own trailing comment.
func TestFixtures(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			m, err := loadFixtureTree(filepath.Join("testdata", "src", e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			res := Run(m, AllRules())
			checkAgainstWants(t, m, res)
		})
	}
}

// loadFixtureTree loads a whole fixture tree: most fixtures are a flat
// directory, but dir-scoped rules (dropped-error) nest the directory
// layout they key on, so trees are expanded recursively.
func loadFixtureTree(root string) (*Module, error) {
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		return nil, err
	}
	return Load(root, dirs)
}

// wantRe matches one expectation clause; a comment may carry several.
var wantRe = regexp.MustCompile(`want(-\d+)?\s+([a-z-]+)\s+"([^"]*)"`)

type want struct {
	file   string
	line   int
	rule   string
	substr string
}

func collectWants(t *testing.T, m *Module) []want {
	t.Helper()
	var wants []want
	for _, p := range m.Packages {
		for _, f := range p.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					for _, match := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						offset := 0
						if match[1] != "" {
							n, err := strconv.Atoi(match[1])
							if err != nil {
								t.Fatalf("%s: bad want offset %q", f.Path, match[1])
							}
							offset = n
						}
						line := m.Fset.Position(c.Pos()).Line + offset
						wants = append(wants, want{f.Path, line, match[2], match[3]})
					}
				}
			}
		}
	}
	return wants
}

func checkAgainstWants(t *testing.T, m *Module, res Result) {
	t.Helper()
	wants := collectWants(t, m)
	matched := make([]bool, len(res.Findings))
	for _, w := range wants {
		found := false
		for i, f := range res.Findings {
			if matched[i] || f.File != w.file || f.Line != w.line || f.Rule != w.rule {
				continue
			}
			if !containsSubstr(f.Message, w.substr) {
				t.Errorf("%s:%d: [%s] fired but message %q lacks %q",
					w.file, w.line, w.rule, f.Message, w.substr)
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("%s:%d: expected [%s] finding containing %q, got none",
				w.file, w.line, w.rule, w.substr)
		}
	}
	for i, f := range res.Findings {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

func containsSubstr(s, sub string) bool {
	return strings.Contains(s, sub)
}

// TestFixturesSeedViolations locks in that the seeded-violation
// fixtures actually produce findings: an accidentally pacified rule
// must fail loudly, not vacuously pass the want comparison.
func TestFixturesSeedViolations(t *testing.T) {
	perRule := map[string]int{}
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		m, err := loadFixtureTree(filepath.Join("testdata", "src", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range Run(m, AllRules()).Findings {
			perRule[f.Rule]++
		}
	}
	for _, name := range append(RuleNames(), DirectiveRule) {
		if perRule[name] == 0 {
			t.Errorf("no fixture exercises rule %q", name)
		}
	}
}

// TestLintClean runs the analyzer over the real module, so `go test
// ./...` fails the moment a violation lands — CI does not need to
// remember to invoke dvlint separately.
func TestLintClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(root, dirs)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, AllRules())
	for _, f := range res.Findings {
		t.Errorf("%s", f)
	}
	if t.Failed() {
		t.Logf("fix the findings above or waive them with //lint:ignore <rule> <reason>")
	}
	if res.Suppressed == 0 {
		t.Errorf("expected the module's known waivers to register as suppressed findings, got 0")
	}
}

// TestSelectRules pins the -rules selection semantics.
func TestSelectRules(t *testing.T) {
	all, err := SelectRules("")
	if err != nil || len(all) != len(AllRules()) {
		t.Fatalf("empty spec: got %d rules, err %v", len(all), err)
	}
	only, err := SelectRules("wallclock,obs-name")
	if err != nil {
		t.Fatal(err)
	}
	if len(only) != 2 || only[0].Name() != "wallclock" || only[1].Name() != "obs-name" {
		t.Fatalf("selection: got %v", ruleNamesOf(only))
	}
	rest, err := SelectRules("-bounded-alloc")
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != len(AllRules())-1 {
		t.Fatalf("exclusion: got %v", ruleNamesOf(rest))
	}
	for _, r := range rest {
		if r.Name() == "bounded-alloc" {
			t.Fatalf("exclusion kept bounded-alloc: %v", ruleNamesOf(rest))
		}
	}
	if _, err := SelectRules("no-such-rule"); err == nil {
		t.Fatal("unknown rule name must error")
	}
}

func ruleNamesOf(rules []Rule) []string {
	var out []string
	for _, r := range rules {
		out = append(out, r.Name())
	}
	return out
}

// TestPartialRunKeepsForeignSuppressions locks in that deselecting a
// rule does not flag its suppressions as unused.
func TestPartialRunKeepsForeignSuppressions(t *testing.T) {
	m, err := Load(filepath.Join("testdata", "src", "suppress"), []string{"."})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := SelectRules("bounded-alloc")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(m, rules).Findings {
		if f.Rule == DirectiveRule && containsSubstr(f.Message, "unused suppression") {
			t.Errorf("deselected rule's suppression reported unused: %s", f)
		}
	}
}

func ExampleFinding_String() {
	fmt.Println(Finding{Rule: "wallclock", File: "internal/record/store.go", Line: 42, Message: "time.Now reads the host clock"})
	// Output: internal/record/store.go:42: [wallclock] time.Now reads the host clock
}
