package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
)

// boundedAllocRule flags `make([]T, n)` (and `make([]T, 0, n)`) where n
// derives from a wire or file read with no bound check in between: the
// display, compress, viewer, and remote decoders all parse untrusted
// bytes (archived files, network peers), and an attacker-controlled
// length that reaches the allocator unchecked is a one-frame
// memory-exhaustion attack. The analysis is taint tracking, tuned to
// the codebase's decoder idioms:
//
//   - sources: calls whose name reads wire data — binio U8/U16/U32/U64,
//     binary.*.Uint16/32/64, ReadUvarint/ReadVarint, and Read*/Parse*/
//     Decode* helpers. Assigning from a source taints the assigned
//     variables.
//   - cleansing: a tainted variable mentioned in an if/switch condition
//     (the cap-check idiom), passed to a checker-named helper
//     (check/valid/bound/cap/limit/clamp), or passed through min/max is
//     considered bounded from then on. len()/cap() of tainted data are
//     clean too: a length measured from bytes already in memory cannot
//     exceed what the process holds.
//   - sinks: make() length/capacity arguments that contain a
//     still-tainted variable or an inlined source call — and, through
//     the module call graph (Module.Analysis), arguments passed to a
//     callee parameter that itself reaches make() unchecked, so moving
//     the allocation into a helper does not hide the missing check.
//
// The rule is deliberately a convention enforcer, not a verifier: it
// asks that the bound check be *visible in the function that reads the
// length* — either before the local make() or before the call that
// hands the length to an allocating callee — which is how every honest
// decoder here is written.
type boundedAllocRule struct{}

func (boundedAllocRule) Name() string { return "bounded-alloc" }
func (boundedAllocRule) Doc() string {
	return "make() sized by wire/file-read values must follow a visible bound check, even when the allocation happens in a callee"
}

// sourceCallNames are exact callee names that read untrusted scalars.
var sourceCallNames = map[string]bool{
	"U8": true, "U16": true, "U32": true, "U64": true,
	"Uint16": true, "Uint32": true, "Uint64": true,
	"ReadUvarint": true, "ReadVarint": true,
}

// sourceCallPrefix matches reader/decoder helpers by naming convention.
var sourceCallPrefix = regexp.MustCompile(`^(Read|read|Parse|parse|Decode|decode)`)

// cleansingCallName matches helpers whose job is to bound a value.
var cleansingCallName = regexp.MustCompile(`(?i)(check|valid|bound|clamp|limit|cap|min|max)`)

func (boundedAllocRule) Check(m *Module, report ReportFunc) {
	an := m.Analysis()
	for _, p := range m.Packages {
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			sinks := taintSinks{
				resolve: func(call *ast.CallExpr) []*FuncSummary {
					return an.Resolve(p, f, call)
				},
				onMakeDirect: func(arg ast.Expr, src string) {
					report(arg.Pos(), "allocation sized directly by %s with no chance for a bound check; read the length into a variable and validate it first", src)
				},
				onMake: func(arg ast.Expr, name, src string) {
					report(arg.Pos(), "allocation sized by %q, which comes from %s with no bound check in between; validate it against a cap before allocating", name, src)
				},
				onCall: func(arg ast.Expr, name, src string, callee *FuncSummary, param int) {
					pname := "_"
					if param < len(callee.ParamNames) && callee.ParamNames[param] != "" {
						pname = callee.ParamNames[param]
					}
					if name == "" {
						report(arg.Pos(), "value read by %s flows into %s(), which uses parameter %q as an unchecked make() size; read it into a variable and validate it before the call", src, callee.QualifiedName(), pname)
						return
					}
					report(arg.Pos(), "%q, which comes from %s, is passed to %s(), which uses parameter %q as an unchecked make() size; validate it against a cap before the call", name, src, callee.QualifiedName(), pname)
				},
			}
			for _, decl := range f.AST.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body != nil {
						scanTaint(d.Body, nil, sinks)
					}
				case *ast.GenDecl:
					// Package-level `var handler = func(...) {...}`.
					ast.Inspect(d, func(n ast.Node) bool {
						if fl, ok := n.(*ast.FuncLit); ok {
							scanTaint(fl.Body, nil, sinks)
							return false
						}
						return true
					})
				}
			}
		}
	}
}

// taintSinks receives the scan's sink hits. resolve (optional) maps a
// call to candidate callee summaries so their alloc parameters become
// sinks too; the onX callbacks may be nil.
type taintSinks struct {
	resolve      func(*ast.CallExpr) []*FuncSummary
	onMakeDirect func(arg ast.Expr, src string)
	onMake       func(arg ast.Expr, name, src string)
	onCall       func(arg ast.Expr, name, src string, callee *FuncSummary, param int)
}

// taintEvent is one position-ordered step in the linear scan of a
// function body.
type taintEvent struct {
	pos  token.Pos
	kind int // 0 assign, 1 guard, 2 make sink, 3 call
	node ast.Node
}

// scanTaint runs the taint scan over one function body, seeded with
// pre-tainted variables (nil for the plain rule run; parameter markers
// for summary building — see Analysis.allocParamsOf). Nested closures
// are scanned as part of the enclosing body: they share its variables,
// and in this codebase they are declared and invoked in source order.
func scanTaint(body *ast.BlockStmt, seed map[string]string, sinks taintSinks) {
	var events []taintEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			events = append(events, taintEvent{v.Pos(), 0, v})
		case *ast.ValueSpec:
			events = append(events, taintEvent{v.Pos(), 0, v})
		case *ast.IfStmt:
			events = append(events, taintEvent{v.Cond.Pos(), 1, v.Cond})
		case *ast.SwitchStmt:
			if v.Tag != nil {
				events = append(events, taintEvent{v.Tag.Pos(), 1, v.Tag})
			}
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" {
				if len(v.Args) >= 2 {
					events = append(events, taintEvent{v.Pos(), 2, v})
				}
				return true
			}
			if calleeCleanses(v.Fun) {
				events = append(events, taintEvent{v.Pos(), 1, v})
				return true
			}
			if len(v.Args) > 0 && !v.Ellipsis.IsValid() {
				events = append(events, taintEvent{v.Pos(), 3, v})
			}
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	tainted := map[string]string{} // var name -> source description
	for name, src := range seed {
		tainted[name] = src
	}
	for _, ev := range events {
		switch ev.kind {
		case 0:
			lhs, rhs := assignParts(ev.node)
			src := taintSource(rhs, tainted)
			for _, name := range lhs {
				if name == "_" {
					continue
				}
				if src != "" {
					tainted[name] = src
				} else {
					delete(tainted, name)
				}
			}
		case 1:
			for _, name := range baseIdents(ev.node) {
				delete(tainted, name)
			}
		case 2:
			call := ev.node.(*ast.CallExpr)
			for _, arg := range call.Args[1:] {
				if src := directSource(arg); src != "" {
					if sinks.onMakeDirect != nil {
						sinks.onMakeDirect(arg, src)
					}
					continue
				}
				for _, name := range baseIdents(arg) {
					if src, ok := tainted[name]; ok {
						if sinks.onMake != nil {
							sinks.onMake(arg, name, src)
						}
					}
				}
			}
		case 3:
			if sinks.resolve == nil || sinks.onCall == nil {
				continue
			}
			call := ev.node.(*ast.CallExpr)
			for _, callee := range sinks.resolve(call) {
				for _, param := range callee.AllocParams {
					if param >= len(call.Args) {
						continue
					}
					arg := call.Args[param]
					if src := directSource(arg); src != "" {
						sinks.onCall(arg, "", src, callee, param)
						continue
					}
					for _, name := range baseIdents(arg) {
						if src, ok := tainted[name]; ok {
							sinks.onCall(arg, name, src, callee, param)
						}
					}
				}
			}
		}
	}
}

// assignParts splits an assignment or var spec into LHS names and RHS
// expressions.
func assignParts(n ast.Node) (lhs []string, rhs []ast.Expr) {
	switch v := n.(type) {
	case *ast.AssignStmt:
		for _, e := range v.Lhs {
			if id, ok := e.(*ast.Ident); ok {
				lhs = append(lhs, id.Name)
			} else {
				lhs = append(lhs, "_")
			}
		}
		rhs = v.Rhs
	case *ast.ValueSpec:
		for _, id := range v.Names {
			lhs = append(lhs, id.Name)
		}
		rhs = v.Values
	}
	return lhs, rhs
}

// taintSource reports why the joint RHS of an assignment is tainted
// ("" when it is not): it mentions a source call, or a variable that is
// itself still tainted. A cleansing top-level call (min, max, check*)
// launders the value.
func taintSource(rhs []ast.Expr, tainted map[string]string) string {
	for _, e := range rhs {
		if call, ok := e.(*ast.CallExpr); ok && calleeCleanses(call.Fun) {
			continue
		}
		if src := directSource(e); src != "" {
			return src
		}
		for _, name := range baseIdents(e) {
			if src, ok := tainted[name]; ok {
				return src
			}
		}
	}
	return ""
}

// directSource finds a source call anywhere inside e and names it.
// len()/cap() subtrees are skipped: the length of data already in
// memory is bounded by that data's existence — allocating len(buf)
// bytes cannot exceed what the process already holds.
func directSource(e ast.Expr) string {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isLenCapCall(call) {
			return false
		}
		name := calleeName(call.Fun)
		if name == "" {
			return true
		}
		if sourceCallNames[name] || sourceCallPrefix.MatchString(name) {
			found = name + "()"
			return false
		}
		return true
	})
	return found
}

// isLenCapCall matches the len()/cap() builtins.
func isLenCapCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && (id.Name == "len" || id.Name == "cap")
}

// calleeName extracts the bare function or method name being called.
func calleeName(fun ast.Expr) string {
	switch v := fun.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	}
	return ""
}

func calleeCleanses(fun ast.Expr) bool {
	name := calleeName(fun)
	return name != "" && cleansingCallName.MatchString(name) && !sourceCallPrefix.MatchString(name)
}

// baseIdents collects the base identifiers mentioned in an expression:
// plain variables and the roots of selector chains, but not field
// names, method names, or package qualifiers of resolved selectors.
func baseIdents(n ast.Node) []string {
	var out []string
	seen := map[string]bool{}
	var visit func(e ast.Node)
	visit = func(e ast.Node) {
		switch v := e.(type) {
		case nil:
		case *ast.Ident:
			if !seen[v.Name] {
				seen[v.Name] = true
				out = append(out, v.Name)
			}
		case *ast.SelectorExpr:
			visit(v.X) // skip .Sel: fields and methods are not variables
		case *ast.CallExpr:
			// len(x)/cap(x) launder taint: the measured data already
			// exists in memory, so its length is not attacker-scalable.
			if isLenCapCall(v) {
				return
			}
			for _, a := range v.Args {
				visit(a)
			}
			// Skip the callee: its name is not a variable mention,
			// except when calling a method chain rooted at a variable.
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				visit(sel.X)
			}
		case *ast.BinaryExpr:
			visit(v.X)
			visit(v.Y)
		case *ast.UnaryExpr:
			visit(v.X)
		case *ast.ParenExpr:
			visit(v.X)
		case *ast.IndexExpr:
			visit(v.X)
			visit(v.Index)
		case *ast.SliceExpr:
			visit(v.X)
			visit(v.Low)
			visit(v.High)
			visit(v.Max)
		case *ast.StarExpr:
			visit(v.X)
		case *ast.TypeAssertExpr:
			visit(v.X)
		case *ast.CompositeLit:
			for _, elt := range v.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					visit(kv.Value)
				} else {
					visit(elt)
				}
			}
		case *ast.KeyValueExpr:
			visit(v.Value)
		}
	}
	if e, ok := n.(ast.Expr); ok {
		visit(e)
	}
	return out
}
