package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Module is a loaded view of one Go module: every requested package
// parsed, best-effort type-checked, and scanned for lint directives.
type Module struct {
	// Root is the absolute path of the module root (the go.mod dir).
	Root string
	// Path is the module path declared in go.mod ("dejaview").
	Path string
	// Fset positions every file in the module.
	Fset *token.FileSet
	// Packages are sorted by directory then package name. A directory
	// holding an external test package (package foo_test) contributes
	// two entries.
	Packages []*Package

	// pkgNames is the set of package names declared anywhere in the
	// module, used by the failpoint cross-check to tell a failpoint-like
	// string apart from an ordinary path literal.
	pkgNames map[string]bool

	// analysis is the lazily built interprocedural foundation shared by
	// every rule that calls Module.Analysis (see analysis.go).
	analysisOnce sync.Once
	analysis     *Analysis
}

// Package is one parsed package.
type Package struct {
	// Name is the package clause name ("record", "record_test").
	Name string
	// Dir is the package directory relative to the module root, in
	// slash form ("internal/record"); "." for the root package.
	Dir string
	// Files are the package's source files, tests included.
	Files []*File
	// Info carries best-effort type information. Imports are resolved
	// against stub packages (see stubImporter), so package-qualified
	// identifiers resolve to the right import path even though member
	// lookups do not; rules fall back to syntax where Info is silent.
	Info *types.Info
}

// File is one parsed source file.
type File struct {
	// AST is the parsed file, comments included.
	AST *ast.File
	// Path is the file path relative to the module root, slash form.
	Path string
	// Test reports a _test.go file.
	Test bool
	// Directives are the //lint: comments found in the file.
	Directives []*Directive
}

// HasPkgName reports whether name is declared as a package name
// somewhere in the module.
func (m *Module) HasPkgName(name string) bool { return m.pkgNames[name] }

// FindModuleRoot walks upward from dir to the nearest directory holding
// a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod; it returns a
// placeholder when there is none (fixture trees have no go.mod).
func modulePath(root string) string {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "fixture"
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest)
		}
	}
	return "fixture"
}

// ExpandPatterns resolves CLI package patterns against the module root:
// "./..." and "dir/..." walk recursively (skipping testdata, vendor, and
// dot-directories), a plain directory names just itself. Returned paths
// are slash-form, relative to root, sorted, and deduplicated.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(rel string) {
		rel = filepath.ToSlash(rel)
		if rel == "" {
			rel = "."
		}
		if !seen[rel] {
			seen[rel] = true
			dirs = append(dirs, rel)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(strings.TrimPrefix(pat, "./"))
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		base := filepath.Join(root, filepath.FromSlash(pat))
		fi, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			if hasGoFiles(base) {
				add(pat)
			}
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				add(rel)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// Load parses and best-effort type-checks the packages found in the
// given module-root-relative directories. Directories are analyzed
// concurrently on a worker pool (one goroutine per package directory,
// bounded by GOMAXPROCS); results are slotted by input position and
// assembled in order, so the loaded module — and every downstream
// finding — is byte-identical whatever the completion order.
func Load(root string, dirs []string) (*Module, error) {
	m := &Module{
		Root:     root,
		Path:     modulePath(root),
		Fset:     token.NewFileSet(), // FileSet methods are synchronized
		pkgNames: map[string]bool{},
	}
	imp := &stubImporter{cache: map[string]*types.Package{}}

	type dirResult struct {
		pkgs []*Package
		err  error
	}
	results := make([]dirResult, len(dirs))
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pkgs, err := loadDir(m.Fset, imp, root, dir)
			results[i] = dirResult{pkgs, err}
		}(i, dir)
	}
	wg.Wait()

	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		for _, p := range r.pkgs {
			m.pkgNames[strings.TrimSuffix(p.Name, "_test")] = true
			m.Packages = append(m.Packages, p)
		}
	}
	sort.Slice(m.Packages, func(i, j int) bool {
		if m.Packages[i].Dir != m.Packages[j].Dir {
			return m.Packages[i].Dir < m.Packages[j].Dir
		}
		return m.Packages[i].Name < m.Packages[j].Name
	})
	return m, nil
}

// loadDir parses and type-checks the packages of one directory. Safe
// to call concurrently: the FileSet synchronizes internally, the stub
// importer locks its cache, and everything else is per-call state.
func loadDir(fset *token.FileSet, imp types.Importer, root, dir string) ([]*Package, error) {
	abs := filepath.Join(root, filepath.FromSlash(dir))
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	byName := map[string]*Package{}
	var order []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		rel := dir + "/" + e.Name()
		if dir == "." {
			rel = e.Name()
		}
		// Read the bytes ourselves so Fset records the pretty
		// module-relative path regardless of the process CWD.
		src, err := os.ReadFile(filepath.Join(abs, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		af, err := parser.ParseFile(fset, rel, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		f := &File{
			AST:        af,
			Path:       rel,
			Test:       strings.HasSuffix(e.Name(), "_test.go"),
			Directives: scanDirectives(fset, af),
		}
		name := af.Name.Name
		p := byName[name]
		if p == nil {
			p = &Package{Name: name, Dir: dir}
			byName[name] = p
			order = append(order, name)
		}
		p.Files = append(p.Files, f)
	}
	sort.Strings(order)
	pkgs := make([]*Package, 0, len(order))
	for _, name := range order {
		p := byName[name]
		p.typecheck(fset, imp)
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// typecheck runs go/types over the package with stub imports and every
// error swallowed: the goal is name resolution (Uses/Defs), not
// soundness — see Package.Info.
func (p *Package) typecheck(fset *token.FileSet, imp types.Importer) {
	p.Info = &types.Info{
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
		Types: map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{
		Importer:    imp,
		Error:       func(error) {}, // stub imports make errors expected
		FakeImportC: true,
	}
	files := make([]*ast.File, len(p.Files))
	for i, f := range p.Files {
		files[i] = f.AST
	}
	// The returned error duplicates the ones already swallowed above.
	conf.Check(p.Dir+"/"+p.Name, fset, files, p.Info) //nolint:errcheck
}

// stubImporter fabricates an empty package for every import path. The
// type checker then resolves `obs` in `obs.Default` to a *types.PkgName
// whose Imported().Path() is the real import path — which is all the
// rules need — without dvlint having to locate or compile dependencies.
// The cache is shared across the parallel loader's workers.
type stubImporter struct {
	mu    sync.Mutex
	cache map[string]*types.Package
}

func (s *stubImporter) Import(path string) (*types.Package, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.cache[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	s.cache[path] = p
	return p, nil
}

// PkgPathOf resolves an identifier that syntactically looks like a
// package qualifier to its import path: first through the type
// checker's Uses map, then through the file's import table. It returns
// "" when ident does not name an imported package.
func (p *Package) PkgPathOf(f *File, ident *ast.Ident) string {
	if obj, ok := p.Info.Uses[ident]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return ""
	}
	for _, spec := range f.AST.Imports {
		path := strings.Trim(spec.Path.Value, `"`)
		local := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			local = path[i+1:]
		}
		if spec.Name != nil {
			local = spec.Name.Name
		}
		if local == ident.Name {
			return path
		}
	}
	return ""
}
