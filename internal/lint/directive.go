package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveKind classifies a //lint: comment.
type DirectiveKind int

const (
	// DirIgnore is `//lint:ignore <rule> <reason>`: suppress findings of
	// the named rule on the directive's line and the line below it.
	DirIgnore DirectiveKind = iota
	// DirManualUnlock is `//lint:manual-unlock <reason>`: waive the
	// lock-discipline rule for the Lock() call on the directive's line
	// or the line below it.
	DirManualUnlock
	// DirMalformed is any other //lint: comment; the runner reports it
	// so typos cannot silently disable a rule.
	DirMalformed
)

// Directive is one parsed //lint: comment.
type Directive struct {
	Kind   DirectiveKind
	Rule   string // DirIgnore only
	Reason string
	// Problem describes what is wrong with a malformed directive.
	Problem string
	// File and Line locate the directive (module-root-relative path).
	File string
	Line int
	Pos  token.Pos

	used bool
}

// directivePrefix is matched exactly at the start of a line comment,
// mirroring the //go: convention: no space before "lint:".
const directivePrefix = "//lint:"

// ParseDirective parses one comment's raw text ("//lint:ignore wallclock
// benchmarks time real IO"). ok is false when the comment is not a lint
// directive at all. A malformed directive parses with Kind DirMalformed
// and a Problem message; the parser never panics, whatever the input
// (FuzzParseIgnoreDirective locks that in).
func ParseDirective(text string) (d Directive, ok bool) {
	rest, found := strings.CutPrefix(text, directivePrefix)
	if !found {
		return Directive{}, false
	}
	verb, args, _ := strings.Cut(rest, " ")
	args = strings.TrimSpace(args)
	switch verb {
	case "ignore":
		rule, reason, _ := strings.Cut(args, " ")
		d = Directive{Kind: DirIgnore, Rule: rule, Reason: strings.TrimSpace(reason)}
		if rule == "" {
			d.Kind = DirMalformed
			d.Problem = "//lint:ignore needs a rule name and a reason"
		} else if d.Reason == "" {
			d.Problem = "//lint:ignore " + rule + " is missing the reason"
		}
		return d, true
	case "manual-unlock":
		d = Directive{Kind: DirManualUnlock, Reason: args}
		if d.Reason == "" {
			d.Problem = "//lint:manual-unlock is missing the reason"
		}
		return d, true
	default:
		if verb == "" {
			verb = "(empty)"
		}
		return Directive{Kind: DirMalformed, Problem: "unknown lint directive " + strings.TrimSpace(verb)}, true
	}
}

// scanDirectives extracts every lint directive from a parsed file.
func scanDirectives(fset *token.FileSet, f *ast.File) []*Directive {
	var out []*Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := ParseDirective(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			d.File = pos.Filename
			d.Line = pos.Line
			d.Pos = c.Pos()
			out = append(out, &d)
		}
	}
	return out
}

// waiverAt returns an unused-or-used DirManualUnlock directive adjacent
// to the given line (same line or the line above), marking it used.
func (f *File) waiverAt(line int) *Directive {
	for _, d := range f.Directives {
		if d.Kind == DirManualUnlock && (d.Line == line || d.Line == line-1) {
			d.used = true
			return d
		}
	}
	return nil
}
