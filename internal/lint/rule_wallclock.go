package lint

import (
	"go/ast"
	"strings"
)

// wallclockRule forbids reading the host clock outside the layers that
// are allowed to: DejaView's record/playback paths are deterministic
// under virtual time (package simclock), and a stray time.Now in one of
// them silently decouples replay from the recorded timeline. Wall time
// is legitimate in simclock itself (it implements real-time mode), obs
// (latency histograms measure the host), bench (it times real work),
// the interactive cmd/ and examples/ front-ends, and tests.
type wallclockRule struct{}

func (wallclockRule) Name() string { return "wallclock" }
func (wallclockRule) Doc() string {
	return "forbid time.Now/Sleep/After and friends outside simclock, obs, bench, cmd/, examples/, and tests"
}

// wallclockForbidden lists the package-level time functions that read
// or wait on the host clock. Types and constants (time.Duration,
// time.Second) are fine anywhere.
var wallclockForbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Since":     true,
	"Until":     true,
}

// wallclockAllowedDirs are module-relative path prefixes where host
// time is part of the job.
var wallclockAllowedDirs = []string{
	"internal/simclock/",
	"internal/obs/",
	"internal/bench/",
	"cmd/",
	"examples/",
}

func wallclockExempt(f *File) bool {
	if f.Test {
		return true
	}
	for _, prefix := range wallclockAllowedDirs {
		if strings.HasPrefix(f.Path, prefix) {
			return true
		}
	}
	return false
}

func (wallclockRule) Check(m *Module, report ReportFunc) {
	for _, p := range m.Packages {
		for _, f := range p.Files {
			if wallclockExempt(f) {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !wallclockForbidden[sel.Sel.Name] {
					return true
				}
				base, ok := sel.X.(*ast.Ident)
				if !ok || p.PkgPathOf(f, base) != "time" {
					return true
				}
				report(sel.Pos(), "time.%s reads the host clock in a replayable path; "+
					"route timing through obs.StartTimer or simclock, or waive with "+
					"//lint:ignore wallclock <why> where wall time is intended", sel.Sel.Name)
				return true
			})
		}
	}
}
