// Fixture for the bounded-alloc rule: allocations sized by wire reads
// must follow a visible bound check. Never compiled by the toolchain;
// parsed by TestFixtures.
package boundedalloc

type reader struct{ buf []byte }

func (r *reader) U32() uint32     { return 0 }
func (r *reader) ReadCount() int  { return 0 }
func (r *reader) DecodeLen() int  { return 0 }
func checkCount(n int) int        { return n }
func transform(n uint32) uint32   { return n + 1 }

const maxItems = 1 << 16

func badTainted(r *reader) []byte {
	n := r.U32()
	return make([]byte, n) // want bounded-alloc "no bound check"
}

func badDirect(r *reader) []byte {
	return make([]byte, r.ReadCount()) // want bounded-alloc "directly"
}

func badPropagated(r *reader) []uint32 {
	n := r.DecodeLen()
	count := n * 4
	return make([]uint32, 0, count) // want bounded-alloc "no bound check"
}

func goodIfGuard(r *reader) []byte {
	n := r.U32()
	if n > maxItems {
		return nil
	}
	return make([]byte, n)
}

func goodCheckerCall(r *reader) []int {
	n := r.ReadCount()
	n = checkCount(n)
	return make([]int, n)
}

func goodMinClamp(r *reader) []byte {
	n := min(int(r.U32()), maxItems)
	return make([]byte, n)
}

func goodConstSize() []byte {
	return make([]byte, 4096)
}

func goodSwitchGuard(r *reader) []byte {
	n := r.U32()
	switch n {
	case 0:
		return nil
	}
	return make([]byte, n)
}

func stillTaintedThroughTransform(r *reader) []byte {
	n := transform(r.U32())
	return make([]byte, n) // want bounded-alloc "no bound check"
}

// Interprocedural cases: the allocation moves into a helper, and the
// bound check must still be visible in the function that reads the
// length.

func allocHelper(n int) []byte {
	return make([]byte, n)
}

func boundedHelper(n int) []byte {
	if n > maxItems {
		return nil
	}
	return make([]byte, n)
}

func outerHelper(count int) []byte {
	return allocHelper(count)
}

func badCrossFunction(r *reader) []byte {
	n := r.U32()
	return allocHelper(int(n)) // want bounded-alloc "unchecked make"
}

func badCrossDirect(r *reader) []byte {
	return allocHelper(r.ReadCount()) // want bounded-alloc "flows into"
}

func badTransitive(r *reader) []byte {
	c := r.DecodeLen()
	return outerHelper(c) // want bounded-alloc "unchecked make"
}

func goodCrossFunction(r *reader) []byte {
	return boundedHelper(int(r.U32()))
}

func goodCheckedBeforeCall(r *reader) []byte {
	n := r.U32()
	if n > maxItems {
		return nil
	}
	return allocHelper(int(n))
}

func goodLenSizedCall(buf []byte) []byte {
	return allocHelper(len(buf) + 8)
}
