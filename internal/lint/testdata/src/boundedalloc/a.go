// Fixture for the bounded-alloc rule: allocations sized by wire reads
// must follow a visible bound check. Never compiled by the toolchain;
// parsed by TestFixtures.
package boundedalloc

type reader struct{ buf []byte }

func (r *reader) U32() uint32     { return 0 }
func (r *reader) ReadCount() int  { return 0 }
func (r *reader) DecodeLen() int  { return 0 }
func checkCount(n int) int        { return n }
func transform(n uint32) uint32   { return n + 1 }

const maxItems = 1 << 16

func badTainted(r *reader) []byte {
	n := r.U32()
	return make([]byte, n) // want bounded-alloc "no bound check"
}

func badDirect(r *reader) []byte {
	return make([]byte, r.ReadCount()) // want bounded-alloc "directly"
}

func badPropagated(r *reader) []uint32 {
	n := r.DecodeLen()
	count := n * 4
	return make([]uint32, 0, count) // want bounded-alloc "no bound check"
}

func goodIfGuard(r *reader) []byte {
	n := r.U32()
	if n > maxItems {
		return nil
	}
	return make([]byte, n)
}

func goodCheckerCall(r *reader) []int {
	n := r.ReadCount()
	n = checkCount(n)
	return make([]int, n)
}

func goodMinClamp(r *reader) []byte {
	n := min(int(r.U32()), maxItems)
	return make([]byte, n)
}

func goodConstSize() []byte {
	return make([]byte, 4096)
}

func goodSwitchGuard(r *reader) []byte {
	n := r.U32()
	switch n {
	case 0:
		return nil
	}
	return make([]byte, n)
}

func stillTaintedThroughTransform(r *reader) []byte {
	n := transform(r.U32())
	return make([]byte, n) // want bounded-alloc "no bound check"
}
