// Fixture for the wallclock rule: no host-clock reads outside the
// allowlisted layers. Never compiled; parsed by TestFixtures.
package wallclock

import "time"

func badNow() time.Time {
	return time.Now() // want wallclock "host clock"
}

func badSleep() {
	time.Sleep(50 * time.Millisecond) // want wallclock "host clock"
}

func badTimer() {
	t := time.NewTimer(time.Second) // want wallclock "host clock"
	t.Stop()
}

func okTypesAndConsts(d time.Duration) time.Duration {
	return d * 2 * time.Second / time.Second
}

func waivedWithReason() time.Time {
	//lint:ignore wallclock fixture demonstrates a justified waiver
	return time.Now()
}
