// Test files may read the host clock freely: no want comments here.
package wallclock

import "time"

func helperUsesRealTime() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
