// Fixture for the map-order rule: range over a map must not feed
// ordered sinks unsorted. Never compiled by the toolchain; parsed by
// TestFixtures.
package maporder

import "sort"

type sink struct{}

func (sink) Write(b []byte) (int, error) { return len(b), nil }

func sortLines(lines []string) {}

func badEscapingAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want map-order "accumulates map-range results"
	}
	return keys
}

func badDerivedAppend(m map[string]int) []string {
	var out []string
	for k, v := range m {
		line := k
		if v > 0 {
			line = k + k
		}
		out = append(out, line) // want map-order "accumulates map-range results"
	}
	return out
}

func badChannelSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want map-order "channel send"
	}
}

func badOrderedSinkCall(m map[string]int, w sink) {
	for k := range m {
		w.Write([]byte(k)) // want map-order "ordered sink Write"
	}
}

func goodSortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodHelperSorted(m map[string]int) []string {
	var lines []string
	for k := range m {
		lines = append(lines, k)
	}
	sortLines(lines)
	return lines
}

func goodCounting(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func goodMapToMap(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

func goodUnobservedOrder(m map[string]int) int {
	var tmp []string
	for k := range m {
		tmp = append(tmp, k)
	}
	return len(m)
}

func goodKeylessRange(m map[string]int, w sink) {
	for range m {
		w.Write([]byte("tick"))
	}
}

func goodSliceRange(keys []string, w sink) {
	for _, k := range keys {
		w.Write([]byte(k))
	}
}
