// Fixture for directive hygiene: suppressions must carry a reason,
// match a real rule, and actually suppress something. Never compiled;
// parsed by TestFixtures.
package suppress

import "time"

func waivedFine() time.Time {
	//lint:ignore wallclock fixture justifies the read with a real reason
	return time.Now()
}

func missingReason() time.Time {
	//lint:ignore wallclock
	return time.Now() // want-1 directive "missing the reason"
}

func unusedWaiver() int {
	//lint:ignore wallclock nothing on the next line reads the clock
	return 1 // want-1 directive "unused suppression"
}

func unknownRule() int {
	//lint:ignore no-such-rule because reasons
	return 2 // want-1 directive "unknown rule"
}

func malformedVerb() int {
	//lint:frobnicate all the things
	return 3 // want-1 directive "unknown lint directive"
}

func unusedManualUnlock() int {
	//lint:manual-unlock no lock anywhere near here
	return 4 // want-1 directive "unused //lint:manual-unlock"
}
