// Fixture for the obs-name rule: instrument and span names follow
// `<pkg>.<op>` with <pkg> = the creating package. Never compiled;
// parsed by TestFixtures.
package obsname

import "dejaview/internal/obs"

type registry struct{}

func (registry) Counter(name string) int   { return 0 }
func (registry) Gauge(name string) int     { return 0 }
func (registry) Histogram(name string) int { return 0 }

type span struct{}

func (span) Child(name string) span { return span{} }

var reg registry

func instruments() {
	reg.Counter("obsname.ops_total")
	reg.Gauge(`obsname.queue_depth`)
	reg.Histogram("other.latency_ms") // want obs-name "claims package"
	reg.Counter("ObsName.ops")        // want obs-name "does not match"
	reg.Counter("obsname")            // want obs-name "does not match"
}

func spans() {
	obs.DefaultTracer.Start("obsname.save")
	obs.DefaultTracer.Start("wrong.save") // want obs-name "claims package"
}

func children(sp span, stream string) {
	sp.Child("obsname.save.commands")
	sp.Child("obsname.save." + stream)
	sp.Child("obsname.save" + stream) // want obs-name "must extend"
}

func notOurs(sp span) {
	// A Start method on a non-obs receiver is out of scope.
	other{}.Start("whatever format")
}

type other struct{}

func (other) Start(string) {}
