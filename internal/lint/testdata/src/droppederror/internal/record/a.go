// Fixture for the dropped-error rule: Close/Commit/CommitAll/Rename/
// Sync/Write errors in the durability packages must be checked or
// waived. The tree nests an internal/record directory because the rule
// is scoped to the save/commit packages by path. Never compiled by the
// toolchain; parsed by TestFixtures.
package record

import "os"

type file struct{}

func (file) Close() error                { return nil }
func (file) Sync() error                 { return nil }
func (file) Write(b []byte) (int, error) { return len(b), nil }
func (file) Flush() error                { return nil }

type tx struct{}

func (tx) Commit() error    { return nil }
func (tx) CommitAll() error { return nil }

func badBareClose(f file) {
	f.Close() // want dropped-error "error is dropped"
}

func badDeferClose(f file) {
	defer f.Close() // want dropped-error "deferred f.Close"
}

func badGoClose(f file) {
	go f.Close() // want dropped-error "drops its error" want goroutine-lifecycle "no visible stop or join"
}

func badBlankAssign(f file) {
	_ = f.Close() // want dropped-error "assigned to _"
}

func badBlankWrite(f file, b []byte) int {
	n, _ := f.Write(b) // want dropped-error "assigned to _"
	return n
}

func badCommit(t tx) {
	t.Commit() // want dropped-error "error is dropped"
}

func badCommitAll(t tx) {
	t.CommitAll() // want dropped-error "error is dropped"
}

func badRename(from, to string) {
	os.Rename(from, to) // want dropped-error "error is dropped"
}

func goodChecked(f file) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func goodAssigned(f file) error {
	err := f.Close()
	return err
}

func goodUnwatchedMethod(f file) {
	f.Flush()
}

func waivedHashWrite(f file, b []byte) {
	//lint:ignore dropped-error hash-style writer, Write never fails
	f.Write(b)
}
