// Fixture for the lock-discipline rule: Lock pairs with defer Unlock
// or a straight-line Unlock; anything else is waived explicitly. Never
// compiled; parsed by TestFixtures.
package lockdiscipline

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func goodDefer(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

func goodInline(b *box) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func goodEarlyExit(b *box) int {
	b.mu.Lock()
	if b.n > 0 {
		b.mu.Unlock()
		return b.n
	}
	b.mu.Unlock()
	return 0
}

func goodDeferredClosure(b *box) {
	b.mu.Lock()
	defer func() {
		b.n = 0
		b.mu.Unlock()
	}()
	b.n++
}

func goodSingleStatementDeferredClosure(b *box) {
	b.mu.Lock()
	defer func() { b.mu.Unlock() }()
	b.n++
}

func badDeferredConditional(b *box) {
	b.mu.Lock() // want lock-discipline "no defer"
	defer func() {
		if b.n > 0 {
			b.mu.Unlock()
		}
	}()
}

func badDeferredNestedGoroutine(b *box) {
	b.mu.Lock() // want lock-discipline "no defer"
	defer func() {
		go func() { // want goroutine-lifecycle "no visible stop or join"
			b.mu.Unlock()
		}()
	}()
}

func badNoRelease(b *box) {
	b.mu.Lock() // want lock-discipline "no defer"
	b.n++
}

func badReturnCrossing(b *box) int {
	b.mu.Lock() // want lock-discipline "return statement crosses"
	if b.n > 0 {
		return b.n
	}
	b.mu.Unlock()
	return 0
}

func waivedHandoff(b *box) {
	//lint:manual-unlock the worker goroutine releases the lock when it finishes
	b.mu.Lock()
	go func() { // want goroutine-lifecycle "no visible stop or join"
		b.n++
		b.mu.Unlock()
	}()
}

type rwbox struct {
	mu sync.RWMutex
	n  int
}

func badMismatchedRelease(b *rwbox) int {
	b.mu.RLock() // want lock-discipline "not released before a return"
	defer b.mu.Unlock()
	return b.n
}

func goodRead(b *rwbox) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.n
}

func closuresAreSeparateScopes(b *box) func() {
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.n++
	}
}
