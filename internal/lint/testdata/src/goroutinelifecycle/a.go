// Fixture for the goroutine-lifecycle rule: every `go` statement needs
// a visible join or stop. Never compiled by the toolchain; parsed by
// TestFixtures.
package goroutinelifecycle

import "sync"

func work() {}

func worker() {
	work()
}

func joiner(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

type dialer struct{}
type pumper struct{}

func (dialer) pump() {}
func (pumper) pump() {}

func badClosure() {
	go func() { // want goroutine-lifecycle "no visible stop or join"
		work()
	}()
}

func badNamed() {
	go worker() // want goroutine-lifecycle "go worker"
}

func badAmbiguousMethod(d dialer) {
	go d.pump() // want goroutine-lifecycle "cannot see into"
}

func goodWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

func goodDoneChannel(stop chan struct{}) {
	go func() {
		<-stop
	}()
}

func goodSelectReceive(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

func goodWorkerLoop(jobs chan int) {
	go func() {
		for range jobs {
			work()
		}
	}()
}

func goodResultJoin() int {
	out := make(chan int)
	go func() {
		out <- 1
	}()
	return <-out
}

func goodNamedWithSignal(wg *sync.WaitGroup) {
	wg.Add(1)
	go joiner(wg)
	wg.Wait()
}

func waivedDaemon() {
	//lint:ignore goroutine-lifecycle process-lifetime pump, exits with the process
	go worker()
}
