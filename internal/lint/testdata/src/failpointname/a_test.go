// The fault matrix arms failpoints by name; every armed name must be
// reachable through a non-test evaluation site.
package fpname

var faultMatrix = []string{
	"fpname/save",
	"fpname/save:index.dv",
	"fpname/open:dynamic.dv",
	"fpname/ghost", // want failpoint-name "never evaluated"
	"testdata/sample.dv",
}
