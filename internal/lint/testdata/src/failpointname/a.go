// Fixture for the failpoint-name rule: evaluation sites follow
// `<pkg>/<op>[:<target>]` with <pkg> = the evaluating package. Never
// compiled; parsed by TestFixtures.
package fpname

import "dejaview/internal/failpoint"

func evalSites(name string) {
	failpoint.Inject("fpname/save")
	failpoint.Inject("fpname/save:index.dv")
	failpoint.Inject("fpname/open:" + name)
	failpoint.Inject("other/save")          // want failpoint-name "claims package"
	failpoint.Inject("NotAValidName")       // want failpoint-name "does not match"
	failpoint.Inject("fpname/open" + name)  // want failpoint-name "must extend"
	failpoint.Reader("fpname/read_body")
	failpoint.WrapConn("fpname/conn.accept")
}
