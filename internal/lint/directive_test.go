package lint

import (
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text    string
		ok      bool
		kind    DirectiveKind
		rule    string
		reason  string
		problem string // substring of Problem, "" = no problem
	}{
		{"// ordinary comment", false, 0, "", "", ""},
		{"//lint: ", true, DirMalformed, "", "", "unknown lint directive"},
		{"//lint:ignore wallclock benchmarks time real IO", true, DirIgnore, "wallclock", "benchmarks time real IO", ""},
		{"//lint:ignore wallclock", true, DirIgnore, "wallclock", "", "missing the reason"},
		{"//lint:ignore", true, DirMalformed, "", "", "needs a rule name"},
		{"//lint:manual-unlock handed to the flush goroutine", true, DirManualUnlock, "", "handed to the flush goroutine", ""},
		{"//lint:manual-unlock", true, DirManualUnlock, "", "", "missing the reason"},
		{"//lint:frobnicate x", true, DirMalformed, "", "", "unknown lint directive"},
		{"// lint:ignore wallclock spaced prefix is not a directive", false, 0, "", "", ""},
	}
	for _, c := range cases {
		d, ok := ParseDirective(c.text)
		if ok != c.ok {
			t.Errorf("%q: ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if d.Kind != c.kind {
			t.Errorf("%q: kind = %v, want %v", c.text, d.Kind, c.kind)
		}
		if d.Rule != c.rule {
			t.Errorf("%q: rule = %q, want %q", c.text, d.Rule, c.rule)
		}
		if d.Reason != c.reason {
			t.Errorf("%q: reason = %q, want %q", c.text, d.Reason, c.reason)
		}
		if c.problem == "" && d.Problem != "" {
			t.Errorf("%q: unexpected problem %q", c.text, d.Problem)
		}
		if c.problem != "" && !strings.Contains(d.Problem, c.problem) {
			t.Errorf("%q: problem = %q, want substring %q", c.text, d.Problem, c.problem)
		}
	}
}

// FuzzParseIgnoreDirective locks in that directive parsing never
// panics, whatever garbage appears after //lint:, and that the parsed
// invariants hold: a well-formed ignore has both a rule and a reason,
// and any problem-free directive is one of the known kinds.
func FuzzParseIgnoreDirective(f *testing.F) {
	f.Add("//lint:ignore wallclock benchmarks time real IO")
	f.Add("//lint:ignore wallclock")
	f.Add("//lint:ignore")
	f.Add("//lint:ignore  doubled  spaces   everywhere")
	f.Add("//lint:manual-unlock reason")
	f.Add("//lint:")
	f.Add("//lint:\x00\xff")
	f.Add("//lint:ignore \t\n rule")
	f.Add("// not a directive")
	f.Add("//lint:ignore rule reason with \"quotes\" and //lint:ignore nested")
	f.Fuzz(func(t *testing.T, text string) {
		d, ok := ParseDirective(text)
		if !ok {
			if strings.HasPrefix(text, directivePrefix) {
				t.Fatalf("%q has the directive prefix but parsed as non-directive", text)
			}
			return
		}
		switch d.Kind {
		case DirIgnore:
			if d.Problem == "" && (d.Rule == "" || d.Reason == "") {
				t.Fatalf("%q: problem-free ignore with rule %q reason %q", text, d.Rule, d.Reason)
			}
		case DirManualUnlock:
			if d.Problem == "" && d.Reason == "" {
				t.Fatalf("%q: problem-free manual-unlock without reason", text)
			}
		case DirMalformed:
			if d.Problem == "" {
				t.Fatalf("%q: malformed directive without a problem message", text)
			}
		default:
			t.Fatalf("%q: unknown directive kind %d", text, d.Kind)
		}
	})
}
