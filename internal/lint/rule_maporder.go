package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// mapOrderRule flags `range` over a map whose per-iteration results
// reach an order-sensitive sink: Go randomizes map iteration order on
// purpose, so anything ordered that a map range feeds — a slice that
// escapes unsorted, a channel send, a writer/emit/encode call, a
// fingerprint or hash input — differs between two otherwise identical
// runs. In DejaView that is not a style nit but a correctness bug: the
// record/replay guarantee rests on replayable paths being
// deterministic, and PR 7's rr-style divergence suite caught exactly
// this class in internal/access (map-ordered event re-emission) only
// after the fact. This rule catches it before it ships.
//
// Recognized launderings: iterating a sorted copy of the keys instead
// of the map (the canonical fix — then the range is over a slice and
// the rule never looks at it), or collecting into a slice that is
// passed to a sort.*/slices.Sort*/sort-named helper later in the same
// function. Accumulating into another map, counting, and summing are
// order-insensitive and never flagged. Where iteration order is
// provably irrelevant (e.g. the sink deduplicates), waive with
// //lint:ignore map-order <why>.
//
// Front-end and measurement layers (cmd/, examples/, internal/bench/)
// and test files are exempt: they do not feed replayable state.
type mapOrderRule struct{}

func (mapOrderRule) Name() string { return "map-order" }
func (mapOrderRule) Doc() string {
	return "range over a map must not feed ordered sinks (escaping appends, channel sends, writers, fingerprints) unsorted in replayable packages"
}

var mapOrderExemptDirs = []string{"cmd/", "examples/", "internal/bench/"}

func mapOrderExempt(f *File) bool {
	if f.Test {
		return true
	}
	for _, prefix := range mapOrderExemptDirs {
		if strings.HasPrefix(f.Path, prefix) {
			return true
		}
	}
	return false
}

// orderedSinkCallee matches call names that emit their arguments in
// call order: writers, printers, encoders, hashes, fingerprints.
var orderedSinkCallee = regexp.MustCompile(`^(Write|Fprint|Print|Emit|Send|Encode|Marshal|Hash|Fingerprint|Submit|Push|Publish)`)

// orderedSinkExact are exact sink names too short to prefix-match.
var orderedSinkExact = map[string]bool{"Sum": true}

func (mapOrderRule) Check(m *Module, report ReportFunc) {
	for _, p := range m.Packages {
		for _, f := range p.Files {
			if mapOrderExempt(f) {
				continue
			}
			for _, decl := range f.AST.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body != nil {
						checkMapRanges(p, f, d.Body, report)
					}
				case *ast.GenDecl:
					ast.Inspect(d, func(n ast.Node) bool {
						if fl, ok := n.(*ast.FuncLit); ok {
							checkMapRanges(p, f, fl.Body, report)
							return false
						}
						return true
					})
				}
			}
		}
	}
}

// checkMapRanges finds every map range in the function body (nested
// closures included — they share the body's variables) and analyzes
// each loop's body for ordered sinks.
func checkMapRanges(p *Package, f *File, body *ast.BlockStmt, report ReportFunc) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapExpr(p, rs.X) {
			return true
		}
		analyzeMapRange(p, f, body, rs, report)
		return true
	})
}

// isMapExpr reports whether the type checker resolved e to a map type.
// Best-effort: stub imports leave cross-module types unresolved, and an
// unresolved range is never flagged.
func isMapExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// analyzeMapRange walks one map-range body in source order, tracking
// which variables derive from the iteration key/value, and reports
// each ordered sink they reach. Appends are deferred: they are only
// findings when the accumulating slice is used after the loop without
// an intervening sort.
func analyzeMapRange(p *Package, f *File, fnBody *ast.BlockStmt, rs *ast.RangeStmt, report ReportFunc) {
	derived := map[string]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			derived[id.Name] = true
		}
	}
	if len(derived) == 0 {
		return // `for range m` observes no per-entry values
	}

	type appendRec struct {
		target string
		pos    token.Pos
	}
	var appends []appendRec

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			mentions := false
			for _, rhs := range v.Rhs {
				if exprMentions(rhs, derived) {
					mentions = true
				}
				if call, ok := rhs.(*ast.CallExpr); ok {
					if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "append" && len(call.Args) >= 2 {
						argMentions := false
						for _, a := range call.Args[1:] {
							if exprMentions(a, derived) {
								argMentions = true
								break
							}
						}
						if argMentions {
							appends = append(appends, appendRec{exprString(call.Args[0]), call.Pos()})
						}
					}
				}
			}
			if mentions {
				for _, lhs := range v.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						derived[id.Name] = true
					}
				}
			}
		case *ast.SendStmt:
			if exprMentions(v.Value, derived) || exprMentions(v.Chan, derived) {
				report(v.Arrow, "map iteration order reaches a channel send; the receiver observes a different order every run — iterate a sorted copy of the keys, or waive with //lint:ignore map-order <why>")
			}
		case *ast.CallExpr:
			name := calleeName(v.Fun)
			if name == "" || (!orderedSinkCallee.MatchString(name) && !orderedSinkExact[name]) {
				return true
			}
			for _, a := range v.Args {
				if exprMentions(a, derived) {
					report(v.Pos(), "map iteration order reaches ordered sink %s(); output differs between identical runs — iterate a sorted copy of the keys, or waive with //lint:ignore map-order <why>", name)
					break
				}
			}
		}
		return true
	})

	for _, ap := range appends {
		if sortedOrUnusedAfter(p, f, fnBody, rs.End(), ap.target) {
			continue
		}
		report(ap.pos, "slice %q accumulates map-range results and is used without a sort; iteration order leaks into whatever consumes it — sort it after the loop, or waive with //lint:ignore map-order <why>", ap.target)
	}
}

// exprMentions reports whether e mentions any variable in the derived
// set (base identifiers only: selector roots, call args, operands).
func exprMentions(e ast.Expr, derived map[string]bool) bool {
	if e == nil {
		return false
	}
	for _, name := range baseIdents(e) {
		if derived[name] {
			return true
		}
	}
	return false
}

// sortedOrUnusedAfter scans the enclosing function body past the range
// statement: the accumulated slice is fine if it is never mentioned
// again (its order is unobservable) or if it reaches a sort —
// sort.*/slices.Sort* or any sort-named helper taking it as an
// argument — before anything else can observe it. "Before" is not
// position-checked: one sort call anywhere after the loop is accepted,
// matching the collect-then-sort idiom this codebase uses.
func sortedOrUnusedAfter(p *Package, f *File, fnBody *ast.BlockStmt, after token.Pos, target string) bool {
	used, sorted := false, false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if n == nil || sorted {
			return false
		}
		if n.End() <= after {
			return false // subtree entirely before/inside the loop
		}
		if call, ok := n.(*ast.CallExpr); ok && call.Pos() >= after && isSortCall(p, f, call) {
			for _, a := range call.Args {
				if mentionsTarget(a, target) {
					sorted = true
					return false
				}
			}
		}
		if n.Pos() >= after {
			if e, ok := n.(ast.Expr); ok && mentionsTarget(e, target) {
				used = true
			}
		}
		return true
	})
	return sorted || !used
}

// mentionsTarget reports whether the printed form of e or any of its
// subexpressions equals the target expression ("keys", "s.buf").
func mentionsTarget(e ast.Expr, target string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.Ident:
			if v.Name == target {
				found = true
			}
		case *ast.SelectorExpr:
			if exprString(v) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes sort.*/slices.Sort* package calls and
// sort-named helpers (sortKeys, SortStable).
func isSortCall(p *Package, f *File, call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if base, ok := sel.X.(*ast.Ident); ok {
			switch p.PkgPathOf(f, base) {
			case "sort", "slices":
				return true
			}
		}
	}
	name := calleeName(call.Fun)
	return name != "" && strings.Contains(strings.ToLower(name), "sort")
}
