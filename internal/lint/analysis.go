package lint

import (
	"go/ast"
	"sort"
	"strconv"
	"strings"
)

// This file is the shared interprocedural foundation: a module-wide
// call graph plus one summary per function declaration, computed once
// per Run (Module.Analysis is lazy and sync.Once-guarded, so the
// parallel loader and concurrent callers share a single build) and
// reused by every rule that needs cross-function facts — bounded-alloc
// follows wire-read lengths into callees, goroutine-lifecycle resolves
// `go f()` launches to f's body, and future rules get the same table
// for free.
//
// Resolution is deliberately best-effort and name-based, matching the
// loader's stub-import philosophy: a bare identifier resolves to the
// same package's function of that name, `pkg.Fn` resolves through the
// import table to another module package, and a method call resolves
// within its own package only when the method name is unambiguous.
// Anything else (interface dispatch, function values, externals)
// resolves to nothing, and rules treat "nothing" conservatively.

// FuncSummary describes one function or method declaration in a
// non-test file.
type FuncSummary struct {
	// Pkg and File locate the declaration; Decl is its AST.
	Pkg  *Package
	File *File
	Decl *ast.FuncDecl
	// Name is the bare declared name. Recv is the receiver's base type
	// name ("Store" for `func (s *Store) Save`), "" for plain functions.
	Name string
	Recv string
	// ParamNames are the declared parameter names, flattened in order
	// ("" for unnamed parameters).
	ParamNames []string
	// AllocParams are indices into ParamNames of parameters that reach
	// a make() size argument with no visible bound check — directly or
	// through further calls (fixpoint over the call graph). A caller
	// passing an unvalidated wire-read length to one of these
	// parameters is as unbounded as calling make() itself.
	AllocParams []int
}

// QualifiedName renders the summary for findings: "Store.Save" or
// "ParseHeader".
func (fs *FuncSummary) QualifiedName() string {
	if fs.Recv != "" {
		return fs.Recv + "." + fs.Name
	}
	return fs.Name
}

// Analysis is the computed foundation over one loaded module.
type Analysis struct {
	module *Module
	// Funcs is every function/method declared in a non-test file, in
	// deterministic (package, file, declaration) order.
	Funcs []*FuncSummary

	plain   map[string][]*FuncSummary // pkgKey+"\x00"+name → plain functions
	methods map[string][]*FuncSummary // pkgKey+"\x00"+name → methods, any receiver
	byDir   map[string][]*Package     // module-relative dir → packages
}

// Analysis returns the module's interprocedural foundation, building
// it on first use. Safe for concurrent callers.
func (m *Module) Analysis() *Analysis {
	m.analysisOnce.Do(func() { m.analysis = computeAnalysis(m) })
	return m.analysis
}

func pkgKey(p *Package) string { return p.Dir + "\x00" + p.Name }

func computeAnalysis(m *Module) *Analysis {
	a := &Analysis{
		module:  m,
		plain:   map[string][]*FuncSummary{},
		methods: map[string][]*FuncSummary{},
		byDir:   map[string][]*Package{},
	}
	for _, p := range m.Packages {
		a.byDir[p.Dir] = append(a.byDir[p.Dir], p)
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fs := &FuncSummary{
					Pkg:        p,
					File:       f,
					Decl:       fd,
					Name:       fd.Name.Name,
					Recv:       recvTypeName(fd),
					ParamNames: paramNames(fd.Type),
				}
				a.Funcs = append(a.Funcs, fs)
				key := pkgKey(p) + "\x00" + fs.Name
				if fs.Recv == "" {
					a.plain[key] = append(a.plain[key], fs)
				} else {
					a.methods[key] = append(a.methods[key], fs)
				}
			}
		}
	}

	// Alloc-param fixpoint: a parameter flows to an allocation either
	// by reaching make() in its own body or by being passed to a callee
	// parameter already known to flow. Flows only accumulate, so the
	// iteration is monotone; the round cap bounds pathological call
	// chains without affecting real code.
	for changed, round := true, 0; changed && round < 10; round++ {
		changed = false
		for _, fs := range a.Funcs {
			next := a.allocParamsOf(fs)
			if !equalInts(next, fs.AllocParams) {
				fs.AllocParams = next
				changed = true
			}
		}
	}
	return a
}

// Resolve maps a call expression to the module function declarations
// it could reach, or nil when the callee is external, dynamic, or
// ambiguous.
func (a *Analysis) Resolve(p *Package, f *File, call *ast.CallExpr) []*FuncSummary {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if builtinFuncs[fun.Name] {
			return nil
		}
		return a.plain[pkgKey(p)+"\x00"+fun.Name]
	case *ast.SelectorExpr:
		if base, ok := fun.X.(*ast.Ident); ok {
			if path := p.PkgPathOf(f, base); path != "" {
				// pkg.Fn: only module-internal packages are loaded.
				rel := a.moduleRelDir(path)
				if rel == "" {
					return nil
				}
				var out []*FuncSummary
				for _, q := range a.byDir[rel] {
					if strings.HasSuffix(q.Name, "_test") {
						continue
					}
					out = append(out, a.plain[pkgKey(q)+"\x00"+fun.Sel.Name]...)
				}
				return out
			}
		}
		// Method call on a value: resolvable within this package only
		// when the bare method name is unambiguous.
		if ms := a.methods[pkgKey(p)+"\x00"+fun.Sel.Name]; len(ms) == 1 {
			return ms
		}
	}
	return nil
}

// moduleRelDir converts an import path to a module-relative directory,
// or "" for paths outside the module.
func (a *Analysis) moduleRelDir(path string) string {
	if path == a.module.Path {
		return "."
	}
	if rest, ok := strings.CutPrefix(path, a.module.Path+"/"); ok {
		return rest
	}
	return ""
}

// paramMarker tags seed taint for summary computation; the index
// survives propagation through the taint map's source strings.
const paramMarkerPrefix = "\x00param\x00"

func paramMarker(i int) string { return paramMarkerPrefix + strconv.Itoa(i) }

func paramMarkerIndex(src string) (int, bool) {
	rest, ok := strings.CutPrefix(src, paramMarkerPrefix)
	if !ok {
		return 0, false
	}
	i, err := strconv.Atoi(rest)
	return i, err == nil
}

// allocParamsOf recomputes which of fs's parameters reach an
// allocation, seeding the shared taint scan with every named parameter
// and recording the ones whose markers hit a make() size or a
// callee's known alloc parameter.
func (a *Analysis) allocParamsOf(fs *FuncSummary) []int {
	if len(fs.ParamNames) == 0 {
		return nil
	}
	seed := map[string]string{}
	for i, name := range fs.ParamNames {
		if name != "" && name != "_" {
			seed[name] = paramMarker(i)
		}
	}
	found := map[int]bool{}
	record := func(src string) {
		if i, ok := paramMarkerIndex(src); ok {
			found[i] = true
		}
	}
	scanTaint(fs.Decl.Body, seed, taintSinks{
		resolve: func(call *ast.CallExpr) []*FuncSummary {
			return a.Resolve(fs.Pkg, fs.File, call)
		},
		onMake: func(arg ast.Expr, name, src string) { record(src) },
		onCall: func(arg ast.Expr, name, src string, callee *FuncSummary, param int) { record(src) },
	})
	if len(found) == 0 {
		return nil
	}
	out := make([]int, 0, len(found))
	for i := range found {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// builtinFuncs are identifiers that never resolve to module functions.
var builtinFuncs = map[string]bool{
	"append": true, "cap": true, "clear": true, "close": true,
	"complex": true, "copy": true, "delete": true, "imag": true,
	"len": true, "make": true, "max": true, "min": true, "new": true,
	"panic": true, "print": true, "println": true, "real": true,
	"recover": true,
}

// recvTypeName extracts the receiver's base type name ("Store" from
// `func (s *Store) Save`), "" for plain functions.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.Ident:
			return v.Name
		default:
			return ""
		}
	}
}

// paramNames flattens a function type's parameter names in declaration
// order ("" for unnamed parameters).
func paramNames(ft *ast.FuncType) []string {
	if ft.Params == nil {
		return nil
	}
	var out []string
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			out = append(out, "")
			continue
		}
		for _, id := range field.Names {
			out = append(out, id.Name)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
