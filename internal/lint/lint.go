// Package lint is DejaView's project-specific static analyzer: a small,
// stdlib-only framework on go/ast, go/parser, and go/types (no x/tools)
// plus a registry of named rules that enforce the conventions the
// compiler cannot — decoders bound untrusted lengths before allocating,
// replayable paths never read the host clock, obs instruments and
// failpoints follow the `<pkg>.<op>` / `<pkg>/<op>` naming schemes the
// fault-matrix and metrics-regression suites key on, and lock/unlock
// pairs stay structured. `cmd/dvlint` runs it from the command line and
// TestLintClean runs it under `go test ./...`, so a violation fails the
// build instead of waiting for review (see DESIGN.md, "Static
// analysis").
//
// Findings are suppressed line-by-line with
//
//	//lint:ignore <rule> <reason>
//
// on the offending line or the line above. A suppression without a
// reason, a suppression that matches nothing, and a malformed //lint:
// comment are themselves findings (rule "directive"), so waivers stay
// explicit, justified, and alive.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"dejaview/internal/obs"
)

// A Rule checks one convention over a loaded module. Check reports each
// violation through report; the runner owns suppression, sorting, and
// formatting.
type Rule interface {
	// Name is the rule's registry key ("wallclock"); it appears in
	// findings as `[name]` and in //lint:ignore directives.
	Name() string
	// Doc is a one-line description for -rules listings.
	Doc() string
	// Check analyzes the module.
	Check(m *Module, report ReportFunc)
}

// ReportFunc records one finding at a position.
type ReportFunc func(pos token.Pos, format string, args ...any)

// DirectiveRule is the name under which directive hygiene problems
// (missing reason, unused suppression, malformed //lint: comment) are
// reported. It is always on and cannot itself be suppressed.
const DirectiveRule = "directive"

// AllRules returns the full registry in reporting order: the five
// original per-function rules, then the interprocedural generation
// built on Module.Analysis (map-order, goroutine-lifecycle,
// dropped-error; bounded-alloc was upgraded in place). With the
// always-on directive rule that makes nine.
func AllRules() []Rule {
	return []Rule{
		&boundedAllocRule{},
		&wallclockRule{},
		&obsNameRule{},
		&failpointNameRule{},
		&lockDisciplineRule{},
		&mapOrderRule{},
		&goroutineLifecycleRule{},
		&droppedErrorRule{},
	}
}

// RuleNames returns the registry's names, in order.
func RuleNames() []string {
	var names []string
	for _, r := range AllRules() {
		names = append(names, r.Name())
	}
	return names
}

// SelectRules resolves a -rules spec: a comma-separated list of rule
// names selects exactly those; names prefixed with "-" exclude from the
// full set; the empty spec selects everything. Mixing selections and
// exclusions applies the exclusions to the selection.
func SelectRules(spec string) ([]Rule, error) {
	all := AllRules()
	if strings.TrimSpace(spec) == "" {
		return all, nil
	}
	byName := map[string]Rule{}
	for _, r := range all {
		byName[r.Name()] = r
	}
	include := map[string]bool{}
	exclude := map[string]bool{}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		name, excluded := strings.CutPrefix(tok, "-")
		if _, ok := byName[name]; !ok {
			return nil, fmt.Errorf("lint: unknown rule %q (have %s)", name, strings.Join(RuleNames(), ", "))
		}
		if excluded {
			exclude[name] = true
		} else {
			include[name] = true
		}
	}
	var out []Rule
	for _, r := range all {
		if exclude[r.Name()] {
			continue
		}
		if len(include) > 0 && !include[r.Name()] {
			continue
		}
		out = append(out, r)
	}
	return out, nil
}

// Finding is one reported violation.
type Finding struct {
	// Rule names the rule that fired ("wallclock", or "directive" for
	// suppression hygiene).
	Rule string `json:"rule"`
	// File is the module-root-relative path.
	File string `json:"file"`
	// Line is the 1-based source line.
	Line int `json:"line"`
	// Message explains the violation.
	Message string `json:"message"`
}

// String formats the finding the way compilers do, so editors and CI
// log scrapers pick it up: `file:line: [rule] message`.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Message)
}

// RuleTime records one rule's wall-clock Check duration. Informational
// only: times vary run to run and never participate in finding
// comparison or sorting.
type RuleTime struct {
	Rule   string  `json:"rule"`
	Millis float64 `json:"millis"`
}

// Result is one lint run's outcome.
type Result struct {
	// Findings are the active (unsuppressed) findings, sorted by file,
	// line, then rule.
	Findings []Finding
	// Suppressed counts findings silenced by //lint:ignore directives.
	Suppressed int
	// RuleTimes holds per-rule Check wall time, in the order the rules
	// were given (registry order for AllRules).
	RuleTimes []RuleTime
}

// Run checks the module with the given rules and applies suppression
// directives. Pass AllRules() (or a SelectRules result) for rules.
// Findings come out stably sorted by (file, line, rule, message), so
// the output is byte-identical however the parallel loader interleaved
// package analysis.
func Run(m *Module, rules []Rule) Result {
	selected := map[string]bool{}
	for _, r := range rules {
		selected[r.Name()] = true
	}
	allNames := map[string]bool{}
	for _, name := range RuleNames() {
		allNames[name] = true
	}

	var raw []Finding
	res := Result{}
	for _, rule := range rules {
		name := rule.Name()
		t := obs.StartTimer()
		rule.Check(m, func(pos token.Pos, format string, args ...any) {
			p := m.Fset.Position(pos)
			raw = append(raw, Finding{
				Rule:    name,
				File:    p.Filename,
				Line:    p.Line,
				Message: fmt.Sprintf(format, args...),
			})
		})
		res.RuleTimes = append(res.RuleTimes, RuleTime{
			Rule:   name,
			Millis: float64(t.Elapsed().Microseconds()) / 1000,
		})
	}

	// Apply suppressions: an ignore directive covers its own line and
	// the line below, for the named rule, in its own file.
	type key struct {
		file string
		line int
		rule string
	}
	ignores := map[key]*Directive{}
	var directives []*Directive
	for _, p := range m.Packages {
		for _, f := range p.Files {
			for _, d := range f.Directives {
				directives = append(directives, d)
				if d.Kind == DirIgnore {
					ignores[key{d.File, d.Line, d.Rule}] = d
					ignores[key{d.File, d.Line + 1, d.Rule}] = d
				}
			}
		}
	}
	for _, f := range raw {
		if d, ok := ignores[key{f.File, f.Line, f.Rule}]; ok {
			d.used = true
			res.Suppressed++
			continue
		}
		res.Findings = append(res.Findings, f)
	}

	// Directive hygiene. Unused-suppression findings are limited to
	// rules that actually ran: a partial -rules run must not call a
	// suppression dead just because its rule was deselected.
	for _, d := range directives {
		switch d.Kind {
		case DirMalformed:
			res.Findings = append(res.Findings, directiveFinding(d, d.Problem))
		case DirIgnore:
			if !allNames[d.Rule] && d.Rule != DirectiveRule {
				res.Findings = append(res.Findings, directiveFinding(d,
					fmt.Sprintf("//lint:ignore names unknown rule %q (have %s)", d.Rule, strings.Join(RuleNames(), ", "))))
				continue
			}
			if d.Problem != "" {
				res.Findings = append(res.Findings, directiveFinding(d, d.Problem))
			}
			if !d.used && selected[d.Rule] {
				res.Findings = append(res.Findings, directiveFinding(d,
					fmt.Sprintf("unused suppression: no %s finding on this or the next line", d.Rule)))
			}
		case DirManualUnlock:
			if d.Problem != "" && (d.used || selected["lock-discipline"]) {
				res.Findings = append(res.Findings, directiveFinding(d, d.Problem))
			}
			if !d.used && selected["lock-discipline"] {
				res.Findings = append(res.Findings, directiveFinding(d,
					"unused //lint:manual-unlock: no Lock() call on this or the next line"))
			}
		}
	}

	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return res
}

func directiveFinding(d *Directive, msg string) Finding {
	return Finding{Rule: DirectiveRule, File: d.File, Line: d.Line, Message: msg}
}
