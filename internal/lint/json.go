package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Report is the machine-readable form of a lint run, emitted by
// `dvlint -json` and consumed by CI dashboards. Schema changes must
// keep TestReportJSONRoundTrip green.
type Report struct {
	// Rules lists the rules that ran, in registry order.
	Rules []string `json:"rules"`
	// Findings are the active findings, sorted by file, line, rule.
	Findings []Finding `json:"findings"`
	// Suppressed counts findings silenced by //lint:ignore.
	Suppressed int `json:"suppressed"`
	// RuleTimes holds per-rule Check wall time in the same order as
	// Rules. Informational: values vary run to run; only the shape is
	// schema-locked.
	RuleTimes []RuleTime `json:"rule_times"`
}

// NewReport assembles a Report from a run's result and rule set.
func NewReport(res Result, rules []Rule) Report {
	r := Report{Suppressed: res.Suppressed, Findings: res.Findings, RuleTimes: res.RuleTimes}
	for _, rule := range rules {
		r.Rules = append(r.Rules, rule.Name())
	}
	if r.Findings == nil {
		r.Findings = []Finding{} // marshal as [], not null
	}
	if r.RuleTimes == nil {
		r.RuleTimes = []RuleTime{}
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseReport decodes and validates a Report produced by WriteJSON.
func ParseReport(b []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return Report{}, fmt.Errorf("lint: parse report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return Report{}, err
	}
	return r, nil
}

// Validate checks internal consistency: every finding must carry a
// rule, file, positive line, and message; findings must be sorted; the
// suppressed count cannot be negative.
func (r Report) Validate() error {
	if r.Suppressed < 0 {
		return fmt.Errorf("lint: report: negative suppressed count %d", r.Suppressed)
	}
	if len(r.Rules) == 0 {
		return fmt.Errorf("lint: report: no rules recorded")
	}
	for i, f := range r.Findings {
		switch {
		case f.Rule == "":
			return fmt.Errorf("lint: report: finding %d has no rule", i)
		case f.File == "":
			return fmt.Errorf("lint: report: finding %d has no file", i)
		case f.Line <= 0:
			return fmt.Errorf("lint: report: finding %d has line %d", i, f.Line)
		case f.Message == "":
			return fmt.Errorf("lint: report: finding %d has no message", i)
		}
	}
	if !sort.SliceIsSorted(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Rule < b.Rule
	}) {
		return fmt.Errorf("lint: report: findings are not sorted by file, line, rule")
	}
	for i, rt := range r.RuleTimes {
		switch {
		case rt.Rule == "":
			return fmt.Errorf("lint: report: rule time %d has no rule", i)
		case rt.Millis < 0:
			return fmt.Errorf("lint: report: rule time %d is negative (%v ms)", i, rt.Millis)
		}
	}
	if len(r.RuleTimes) != 0 && len(r.RuleTimes) != len(r.Rules) {
		return fmt.Errorf("lint: report: %d rule times for %d rules", len(r.RuleTimes), len(r.Rules))
	}
	return nil
}
