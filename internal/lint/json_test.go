package lint

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() Report {
	var times []RuleTime
	for i, name := range RuleNames() {
		times = append(times, RuleTime{Rule: name, Millis: float64(i) * 0.25})
	}
	return Report{
		Rules: RuleNames(),
		Findings: []Finding{
			{Rule: "wallclock", File: "internal/record/store.go", Line: 12, Message: "time.Now reads the host clock"},
			{Rule: "bounded-alloc", File: "internal/viewer/proto.go", Line: 40, Message: "allocation sized by \"n\""},
			{Rule: "obs-name", File: "internal/viewer/proto.go", Line: 44, Message: "bad name"},
		},
		Suppressed: 3,
		RuleTimes:  times,
	}
}

// TestReportJSONRoundTrip mirrors the bench report schema test: what
// WriteJSON emits, ParseReport must reproduce exactly.
func TestReportJSONRoundTrip(t *testing.T) {
	orig := sampleReport()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(buf.Bytes())
	if err != nil {
		t.Fatalf("round-trip parse: %v\njson:\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round-trip mismatch:\norig: %+v\nback: %+v", orig, back)
	}
}

func TestReportJSONEmptyFindings(t *testing.T) {
	rep := NewReport(Result{Suppressed: 1}, AllRules())
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"findings": []`) {
		t.Fatalf("empty findings must marshal as [], got:\n%s", buf.String())
	}
	if _, err := ParseReport(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestParseReportRejects(t *testing.T) {
	break1 := func(mut func(*Report)) []byte {
		r := sampleReport()
		mut(&r)
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"truncated json", []byte(`{"rules": ["wallclock"], "findings": [`), "parse report"},
		{"negative suppressed", break1(func(r *Report) { r.Suppressed = -1 }), "negative suppressed"},
		{"no rules", break1(func(r *Report) { r.Rules = nil }), "no rules"},
		{"finding without rule", break1(func(r *Report) { r.Findings[0].Rule = "" }), "has no rule"},
		{"finding without file", break1(func(r *Report) { r.Findings[1].File = "" }), "has no file"},
		{"finding with zero line", break1(func(r *Report) { r.Findings[1].Line = 0 }), "has line"},
		{"finding without message", break1(func(r *Report) { r.Findings[2].Message = "" }), "has no message"},
		{"unsorted findings", break1(func(r *Report) {
			r.Findings[0], r.Findings[2] = r.Findings[2], r.Findings[0]
		}), "not sorted"},
		{"rule time without rule", break1(func(r *Report) { r.RuleTimes[0].Rule = "" }), "has no rule"},
		{"negative rule time", break1(func(r *Report) { r.RuleTimes[0].Millis = -1 }), "negative"},
		{"rule time count mismatch", break1(func(r *Report) { r.RuleTimes = r.RuleTimes[:1] }), "rule times for"},
	}
	for _, c := range cases {
		if _, err := ParseReport(c.data); err == nil {
			t.Errorf("%s: expected error", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.want)
		}
	}
}
