package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroutineLifecycleRule requires every `go` statement to show a
// visible stop or join mechanism: an unjoined fire-and-forget goroutine
// is a leak under load (the daemon serves fleets of sessions for hours)
// and an ordering hazard under replay (work racing past the scenario
// that launched it). The rule accepts the codebase's four structured
// launch shapes, checked syntactically in the goroutine body — for
// `go f(...)` named launches the body is resolved through the module
// call graph (Module.Analysis) when the callee is unambiguous:
//
//   - join via WaitGroup or context: the body calls `<x>.Done()` (a
//     `defer wg.Done()` pairs with the launcher's Wait; `<-ctx.Done()`
//     matches twice over) or `<x>.Wait()`.
//   - stop via channel: the body receives (`<-done`, a select with a
//     receive case) — it parks on a signal someone can deliver.
//   - worker loop: the body ranges over a channel, terminating when the
//     producer closes it.
//   - result join: the body sends on a channel that the launching
//     function visibly receives from (or ranges over).
//
// Everything else — including launches of callees the analyzer cannot
// resolve — is a finding. A goroutine whose lifecycle is managed some
// other provable way (process-lifetime daemons, OS-signal waiters) is
// waived with //lint:ignore goroutine-lifecycle <why>, which doubles
// as documentation of who stops it.
type goroutineLifecycleRule struct{}

func (goroutineLifecycleRule) Name() string { return "goroutine-lifecycle" }
func (goroutineLifecycleRule) Doc() string {
	return "every `go` statement needs a visible join or stop: WaitGroup/ctx Done, a done-channel receive or select, a channel worker loop, or a result send the launcher receives"
}

func (goroutineLifecycleRule) Check(m *Module, report ReportFunc) {
	an := m.Analysis()
	for _, p := range m.Packages {
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				var launcher *ast.BlockStmt
				switch v := n.(type) {
				case *ast.FuncDecl:
					launcher = v.Body
				case *ast.FuncLit:
					launcher = v.Body
				default:
					return true
				}
				if launcher != nil {
					checkGoStmts(an, p, f, launcher, report)
				}
				return true
			})
		}
	}
}

// checkGoStmts examines the `go` statements launched directly by this
// function body (not those inside nested function literals — each
// closure is its own launcher scope, visited by the outer Inspect).
func checkGoStmts(an *Analysis, p *Package, f *File, launcher *ast.BlockStmt, report ReportFunc) {
	walkSameFunc(launcher, func(n ast.Node) {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		body, resolved := goBody(an, p, f, g.Call)
		if body == nil {
			report(g.Pos(), "`go %s` launches a goroutine dvlint cannot see into (unresolved or ambiguous callee) and no join/stop is visible at the launch site; launch a closure with a visible lifecycle or waive with //lint:ignore goroutine-lifecycle <why>", exprString(g.Call.Fun))
			return
		}
		// A resolved callee's body lives in its own package; channel-type
		// lookups must use that package's Info, not the launch site's.
		bodyPkg := p
		if resolved != nil {
			bodyPkg = resolved.Pkg
		}
		if bodyHasLifecycleSignal(bodyPkg, body) {
			return
		}
		if launcherReceivesFrom(launcher, channelsSentIn(body)) {
			return
		}
		what := "goroutine"
		if resolved != nil {
			what = "`go " + resolved.QualifiedName() + "`"
		}
		report(g.Pos(), "%s has no visible stop or join: no WaitGroup/ctx Done, no done-channel receive or select, no channel worker loop, and no result send the launcher receives; add one or waive with //lint:ignore goroutine-lifecycle <why>", what)
	})
}

// goBody locates the launched goroutine's body: a function literal's
// own body, or the unambiguously resolved declaration of a named
// callee.
func goBody(an *Analysis, p *Package, f *File, call *ast.CallExpr) (*ast.BlockStmt, *FuncSummary) {
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		return fl.Body, nil
	}
	if sums := an.Resolve(p, f, call); len(sums) == 1 && sums[0].Decl.Body != nil {
		return sums[0].Decl.Body, sums[0]
	}
	return nil, nil
}

// bodyHasLifecycleSignal reports whether the goroutine body contains a
// join or stop mechanism: a Done()/Wait() call, a channel receive, or
// a range over a channel. Nested closures are included — a signal
// handled anywhere downstream of the launch is visible enough.
func bodyHasLifecycleSignal(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && len(v.Args) == 0 &&
				(sel.Sel.Name == "Done" || sel.Sel.Name == "Wait") {
				found = true
				return false
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if isChanExpr(p, v.X) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// channelsSentIn collects the printed channel expressions the body
// sends on or closes (`defer close(out)` ends a receiver's range).
func channelsSentIn(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			out[exprString(v.Chan)] = true
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "close" && len(v.Args) == 1 {
				out[exprString(v.Args[0])] = true
			}
		}
		return true
	})
	return out
}

// launcherReceivesFrom reports whether the launching function visibly
// consumes any of the given channels: a receive expression, a range, or
// a select receive case anywhere in its body (nested closures count —
// a sibling goroutine draining the results still joins the pipeline).
func launcherReceivesFrom(launcher *ast.BlockStmt, chans map[string]bool) bool {
	if len(chans) == 0 {
		return false
	}
	found := false
	ast.Inspect(launcher, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		switch v := n.(type) {
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && chans[exprString(v.X)] {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if chans[exprString(v.X)] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isChanExpr reports whether the type checker resolved e to a channel
// type (best-effort, like isMapExpr).
func isChanExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
