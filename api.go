package dejaview

import (
	"io"
	"net"
	"time"

	"dejaview/internal/access"
	"dejaview/internal/core"
	"dejaview/internal/display"
	"dejaview/internal/playback"
	"dejaview/internal/record"
	"dejaview/internal/remote"
	"dejaview/internal/simclock"
	"dejaview/internal/vexec"
	"dejaview/internal/viewer"
)

// This file re-exports the substrate types a library user needs to drive
// a Session: display commands for the virtual display, the accessibility
// registry for text capture, and the virtual execution environment for
// processes. The internal packages hold the implementations; this facade
// is the supported surface.

// ---- Virtual display (THINC-style) ----

// Rect is a screen region.
type Rect = display.Rect

// Point is a screen coordinate.
type Point = display.Point

// Pixel is a 32-bit ARGB pixel.
type Pixel = display.Pixel

// Command is one display protocol command.
type Command = display.Command

// Framebuffer holds screen contents (screenshots, playback output).
type Framebuffer = display.Framebuffer

// DisplayServer is the session's virtual display server.
type DisplayServer = display.Server

// Player replays a display record.
type Player = playback.Player

// RecordStore is a saved display record.
type RecordStore = record.Store

// NewRect builds a screen region.
func NewRect(x, y, w, h int) Rect { return display.NewRect(x, y, w, h) }

// RGB assembles an opaque pixel.
func RGB(r, g, b uint8) Pixel { return display.RGB(r, g, b) }

// SolidFill fills a region with one color.
func SolidFill(t Time, dst Rect, color Pixel) Command {
	return display.SolidFill(t, dst, color)
}

// CopyRect copies a screen region (scrolling, window moves).
func CopyRect(t Time, dst Rect, src Point) Command {
	return display.Copy(t, dst, src)
}

// RawPixels draws unencoded pixel data.
func RawPixels(t Time, dst Rect, pixels []Pixel) Command {
	return display.Raw(t, dst, pixels)
}

// GlyphBitmap draws a 1bpp glyph bitmap with fg/bg colors.
func GlyphBitmap(t Time, dst Rect, bits []byte, fg, bg Pixel) Command {
	return display.Bitmap(t, dst, bits, fg, bg)
}

// VideoFrame draws one compressed video frame over dst.
func VideoFrame(t Time, dst Rect, frame []byte) Command {
	return display.Video(t, dst, frame)
}

// OpenRecord loads a display record saved with Session.Recorder().
func OpenRecord(dir string) (*RecordStore, error) { return record.Open(dir) }

// NewPlayer opens a playback engine over a record.
func NewPlayer(store *RecordStore, cacheSize int) *Player {
	return playback.New(store, cacheSize)
}

// ---- Accessibility (text capture) ----

// Registry is the desktop accessibility registry.
type Registry = access.Registry

// Application is a desktop application exposing an accessible tree.
type Application = access.Application

// Component is one accessible tree node.
type Component = access.Component

// Role classifies accessible components.
type Role = access.Role

// Accessible component roles.
const (
	RoleWindow    = access.RoleWindow
	RoleDocument  = access.RoleDocument
	RoleParagraph = access.RoleParagraph
	RoleMenuItem  = access.RoleMenuItem
	RoleLink      = access.RoleLink
	RoleButton    = access.RoleButton
	RoleTerminal  = access.RoleTerminal
	RoleStatusBar = access.RoleStatusBar
)

// ---- Virtual execution environment (Zap-style) ----

// Container is a private virtual namespace (the session's execution
// environment).
type Container = vexec.Container

// Process is a simulated process.
type Process = vexec.Process

// PID is a virtual process ID.
type PID = vexec.PID

// PageSize is the virtual memory page size.
const PageSize = vexec.PageSize

// Memory protection bits.
const (
	PermRead  = vexec.PermRead
	PermWrite = vexec.PermWrite
	PermExec  = vexec.PermExec
)

// Socket protocols.
const (
	ProtoTCP = vexec.ProtoTCP
	ProtoUDP = vexec.ProtoUDP
)

// CheckpointResult is one checkpoint's latency breakdown.
type CheckpointResult = vexec.CheckpointResult

// RestoreOptions tune a revive (e.g. demand paging).
type RestoreOptions = vexec.RestoreOptions

// ---- Viewer (client-server access) ----

// ViewerClient is the stateless display client.
type ViewerClient = viewer.Client

// ServeViewer attaches one viewer connection to a session and blocks
// until the connection closes.
func ServeViewer(s *Session, conn io.ReadWriter) error { return viewer.Serve(s, conn) }

// ConnectViewer performs the client handshake over conn.
func ConnectViewer(conn io.ReadWriter) (*ViewerClient, error) { return viewer.Connect(conn) }

// ---- Remote access service ----

// RemoteServer is the concurrent network access daemon: live viewing,
// search RPC, and playback streaming multiplexed over TCP.
type RemoteServer = remote.Server

// RemoteOptions configure a daemon: the sessions and archives to serve
// (a single default or a whole multi-tenant fleet), per-session
// admission budgets, queue bounds, and the drain deadline.
type RemoteOptions = remote.Options

// RemoteSessionConfig registers one session or archive under a session
// ID on a multi-tenant daemon (RemoteOptions.Sessions).
type RemoteSessionConfig = remote.SessionConfig

// RemoteClient is a connection to a daemon; one client multiplexes any
// number of live views, playback streams, and RPCs.
type RemoteClient = remote.Client

// LiveView is an attached live session view on a remote client.
type LiveView = remote.LiveView

// PlaybackStream is a server-driven playback on a remote client.
type PlaybackStream = remote.PlaybackStream

// PlaybackRequest describes a remote playback stream.
type PlaybackRequest = remote.PlaybackRequest

// RemoteStats is the daemon's aggregate serving statistics.
type RemoteStats = remote.Stats

// Remote playback modes and request sources.
const (
	PlayCommands  = remote.PlayCommands
	PlayKeyframes = remote.PlayKeyframes
	SourceSession = remote.SourceSession
	SourceArchive = remote.SourceArchive
)

// ServeRemote starts a network access daemon on ln.
func ServeRemote(ln net.Listener, opts RemoteOptions) *RemoteServer {
	return remote.Serve(ln, opts)
}

// DialRemote connects to a daemon and performs the handshake, reaching
// the daemon's default session.
func DialRemote(addr string) (*RemoteClient, error) { return remote.Dial(addr) }

// DialRemoteSession connects to a daemon and routes to the named
// session. Fails with ErrRemoteUnknownSession if no such session is
// registered and ErrRemoteBusy if the session sheds the connection at
// admission.
func DialRemoteSession(addr, sessionID string) (*RemoteClient, error) {
	return remote.DialSession(addr, sessionID)
}

// Typed handshake rejections from a multi-tenant daemon.
var (
	// ErrRemoteUnknownSession reports a session ID no session is
	// registered under.
	ErrRemoteUnknownSession = remote.ErrUnknownSession
	// ErrRemoteBusy reports admission control shedding the connection
	// (session at client capacity or over its byte quota).
	ErrRemoteBusy = remote.ErrBusy
)

// ---- Session archives ----

// Archive is a reopened session archive: the complete WYSIWYS record —
// display, text index, checkpoint chain, and file-system history — with
// browse, search, playback, and revive all working offline.
type Archive = core.Archive

// ArchiveRevived is a live session revived from an archived checkpoint.
type ArchiveRevived = core.ArchiveRevived

// OpenArchive loads an archive directory written by Session.SaveArchive.
func OpenArchive(dir string) (*Archive, error) { return core.OpenArchive(dir) }

// ---- Record encryption (§2 privacy layer) ----

// EncryptionKeySize is the sealed-record key size.
const EncryptionKeySize = record.KeySize

// DeriveKey stretches a passphrase into a sealed-record key.
func DeriveKey(passphrase string, salt []byte) []byte {
	return record.DeriveKey(passphrase, salt)
}

// OpenEncryptedRecord loads a record saved with Store.SaveEncrypted.
func OpenEncryptedRecord(dir string, key []byte) (*RecordStore, error) {
	return record.OpenEncrypted(dir, key)
}

// Duration converts a standard duration to virtual time.
func Duration(d time.Duration) Time { return simclock.Duration(d) }
