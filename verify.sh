#!/bin/sh
# verify.sh — the full pre-merge gauntlet, in cost order: tier-1 build
# and tests first, then vet, then dvlint (the project's own static
# analysis; see DESIGN.md, "Static analysis"), then the race detector
# over the concurrency hot spots listed in ROADMAP.md. Fails fast.
set -eux

go build ./...
go test ./...
go vet ./...
go run ./cmd/dvlint ./...
go test -race \
	./internal/compress/... \
	./internal/record/... \
	./internal/core/... \
	./internal/vexec/... \
	./internal/remote/... \
	./internal/e2e/... \
	./internal/obs/...
