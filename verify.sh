#!/bin/sh
# verify.sh — the full pre-merge gauntlet, in cost order: tier-1 build
# and tests first, then vet, then dvlint (the project's own static
# analysis; see DESIGN.md, "Static analysis"), then the race detector
# over the concurrency hot spots listed in ROADMAP.md, then a bench
# regression gate against the committed storage baseline. Fails fast.
#
# `verify.sh -quick` runs only the tier-1 gates (build, test, vet) —
# the inner-loop check while iterating; the full gauntlet stays the
# pre-merge bar.
set -eux

go build ./...
go test ./...
go vet ./...

if [ "${1:-}" = "-quick" ]; then
	exit 0
fi

benchdir=$(mktemp -d)
trap 'rm -rf "$benchdir"' EXIT

# Lint gate: capture the JSON report so a failure prints the per-rule
# findings/time summary instead of leaving only an exit status in the
# CI log.
go run ./cmd/dvlint -json ./... >"$benchdir/lint.json" || {
	go run ./cmd/dvlint -summarize "$benchdir/lint.json"
	exit 1
}

go test -race \
	./internal/lru/... \
	./internal/compress/... \
	./internal/record/... \
	./internal/core/... \
	./internal/vexec/... \
	./internal/remote/... \
	./internal/playback/... \
	./internal/e2e/... \
	./internal/tier/... \
	./internal/obs/... \
	./internal/lint/...

# Bench gate: re-measure a cheap storage subset and diff it against the
# committed baseline (BENCH_storage.json, written by
# `dvbench -storage -codec raw,flate,lzs,auto -json`). The compare
# skips metrics absent from either side, so the subset diffs cleanly
# against the full baseline. The 1.0 threshold (100%) only catches
# gross regressions — ratios going badly wrong, throughput collapsing —
# not scheduler noise on shared runners. dvbench writes BENCH_*.json to
# its working directory, so run it from a temp dir to keep the
# committed baseline untouched.
go build -o "$benchdir/dvbench" ./cmd/dvbench
(cd "$benchdir" && ./dvbench -storage -scenarios cat,gzip \
	-codec flate,lzs,auto -json >/dev/null)
go run ./cmd/dvbench -compare -threshold 1.0 \
	BENCH_storage.json "$benchdir/BENCH_storage.json"

# Fleet gate: one cheap multi-tenant shape (2 sessions x 2 viewers)
# diffed against the committed full-ladder baseline (BENCH_fleet.json,
# written by `dvbench -fleet -json`). Same subset-vs-full and
# gross-regression-only rules as the storage gate.
(cd "$benchdir" && ./dvbench -fleet -shapes 2x2 -json >/dev/null)
go run ./cmd/dvbench -compare -threshold 1.0 \
	BENCH_fleet.json "$benchdir/BENCH_fleet.json"

# Compact gate: one scenario's tiered-lifecycle run (lazy vs eager open
# block counts are deterministic; times gated for gross regressions
# only) diffed against the committed full baseline (BENCH_compact.json,
# written by `dvbench -compact -json`).
(cd "$benchdir" && ./dvbench -compact -scenarios editor -json >/dev/null)
go run ./cmd/dvbench -compare -threshold 1.0 \
	BENCH_compact.json "$benchdir/BENCH_compact.json"

# Browse gate: one scenario's visual-history seek run (strip shape and
# block-cache counts are deterministic; cold/warm times gated for gross
# regressions only; the warm>=2x cold bar itself is enforced by
# internal/bench TestRunBrowse) diffed against the committed full
# baseline (BENCH_browse.json, written by `dvbench -browse -json`).
(cd "$benchdir" && ./dvbench -browse -scenarios screentrack -json >/dev/null)
go run ./cmd/dvbench -compare -threshold 1.0 \
	BENCH_browse.json "$benchdir/BENCH_browse.json"
